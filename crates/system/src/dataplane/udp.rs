//! Real-packet UDP [`DataPlane`]: probes as actual datagrams.
//!
//! Every simulated backend answers a probe by *computing* its fate; this
//! one finds out by sending it. A probe is encoded with
//! [`encode_probe`](detector_simnet::encode_probe) — the same IP-in-IP
//! wire layout the simulator models — wrapped in a UDP datagram to a
//! [`Responder`](crate::responder::Responder)-backed echo socket, and
//! matched back to its sender by sequence number when the echo returns.
//!
//! The pieces:
//!
//! * [`UdpDataPlane`] — the [`DataPlane`] implementation. A small pool of
//!   sockets, each with a dedicated recv loop; `probe_tagged` blocks the
//!   *calling* worker on a condvar until the echo lands or the attempt
//!   times out, so the pipelined scheduler's probe workers hide wire wait
//!   exactly as they hide the simulator's modeled RTTs.
//! * [`RetryPolicy`] — per-probe timeout with bounded exponential
//!   backoff. Every attempt gets a **fresh** sequence number, so an echo
//!   that arrives after its attempt was abandoned can never complete a
//!   later attempt (no double-counting; see `late_echoes` in
//!   [`UdpStats`]).
//! * RTT measurement — kernel `SO_TIMESTAMP` receive stamps
//!   ([`timestamp`]) when the platform grants them, monotonic clock
//!   fallback otherwise. Both flow through the [`ProbeClock`] seam, which
//!   keeps detlint's `determinism` check meaningful: host time enters
//!   only through that annotated boundary, and RTTs never steer window
//!   control flow.
//! * [`LossShim`] — deterministic injected loss, keyed by
//!   `(seed, window, path_id)` and decided *before* the socket is
//!   touched. Because the drop decision is a pure hash and outcomes carry
//!   no RTT into window results, the pipelined/scripted equivalence and
//!   soak suites hold against real sockets.
//! * [`UdpHarness`] (in [`harness`]) — in-process loopback responders
//!   that make all of this CI-testable without privileges or real NICs.

mod harness;
mod timestamp;

pub use harness::{HarnessStats, UdpHarness};

use std::collections::HashMap;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use detector_simnet::{decode_probe, FlowKey, ProbePacket};
use detector_topology::Route;
use rand::rngs::SmallRng;

use crate::clock::ProbeClock;
use crate::dataplane::{DataPlane, ProbeOutcome, ProbeTag};
use crate::pinger::splitmix64;

/// Per-probe timeout/retry schedule: `retries + 1` attempts, the n-th
/// waiting `attempt_timeout_us * backoff_mult^n` capped at
/// `max_timeout_us`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Timeout of the first attempt, microseconds.
    pub attempt_timeout_us: u64,
    /// Number of retransmissions after the first attempt.
    pub retries: u32,
    /// Multiplier applied to the timeout per retransmission (≥ 1).
    pub backoff_mult: u32,
    /// Upper bound on any single attempt's timeout, microseconds.
    pub max_timeout_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempt_timeout_us: 20_000,
            retries: 2,
            backoff_mult: 4,
            max_timeout_us: 100_000,
        }
    }
}

impl RetryPolicy {
    /// Total send attempts (first try + retries).
    pub fn attempts(&self) -> u32 {
        self.retries.saturating_add(1)
    }

    /// Timeout for the zero-indexed `attempt`, with backoff and cap
    /// applied.
    pub fn timeout_us(&self, attempt: u32) -> u64 {
        let mult = u64::from(self.backoff_mult.max(1)).saturating_pow(attempt);
        self.attempt_timeout_us
            .saturating_mul(mult)
            .min(self.max_timeout_us.max(self.attempt_timeout_us))
    }
}

/// Configuration for [`UdpDataPlane`].
#[derive(Clone, Debug)]
pub struct UdpConfig {
    /// Number of probe sockets (each with its own recv loop).
    pub sockets: usize,
    /// Local address the probe sockets bind (port 0 = ephemeral).
    pub bind: SocketAddr,
    /// Timeout/retry schedule per probe.
    pub retry: RetryPolicy,
    /// Read timeout of the recv loops; bounds shutdown latency.
    pub recv_poll: Duration,
}

impl Default for UdpConfig {
    fn default() -> Self {
        Self {
            sockets: 2,
            bind: SocketAddr::from((Ipv4Addr::LOCALHOST, 0)),
            retry: RetryPolicy::default(),
            recv_poll: Duration::from_millis(20),
        }
    }
}

/// Deterministic injected loss for the loopback harness.
///
/// Whether a probe is dropped is a pure hash of
/// `(seed, window, path_id)` — no socket state, no clock — so a
/// sequential oracle run and a pipelined run over the same plan drop
/// exactly the same probes, which is what lets the equivalence and soak
/// suites run against real sockets. The decision short-circuits at the
/// send boundary (no datagram, no timeout wait), mirroring how the
/// simulated fabric reports a loss without serving the RTT.
///
/// In-rack probes ([`ProbeTag::IN_RACK`]) are never dropped: they carry
/// no matrix path, and dropping them would only perturb reachability
/// accounting the suites pin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LossShim {
    seed: u64,
    drop_per_mille: u16,
}

impl LossShim {
    /// A shim dropping `drop_per_mille`/1000 of matrix-path probes,
    /// keyed by `seed`.
    pub fn new(seed: u64, drop_per_mille: u16) -> Self {
        Self {
            seed,
            drop_per_mille: drop_per_mille.min(1000),
        }
    }

    /// Pure drop decision for one probe.
    pub fn drops(&self, window: u64, path_id: u32) -> bool {
        if path_id == ProbeTag::IN_RACK {
            return false;
        }
        let h = splitmix64(splitmix64(self.seed ^ window) ^ u64::from(path_id));
        h % 1000 < u64::from(self.drop_per_mille)
    }
}

/// Snapshot of [`UdpDataPlane`] counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UdpStats {
    /// Datagrams handed to the socket.
    pub sent: u64,
    /// Probes whose echo arrived within some attempt's timeout.
    pub delivered: u64,
    /// Retransmission attempts (beyond each probe's first send).
    pub retries: u64,
    /// Attempts abandoned on timeout.
    pub timeouts: u64,
    /// Echoes that arrived after their attempt was abandoned (or arrived
    /// twice); dropped without completing anything.
    pub late_echoes: u64,
    /// Probes dropped by the injected-loss shim before reaching a socket.
    pub shim_dropped: u64,
    /// Echoes whose RTT came from a kernel `SO_TIMESTAMP` stamp.
    pub kernel_stamped: u64,
    /// Echoes whose RTT fell back to the monotonic clock.
    pub mono_stamped: u64,
    /// Datagrams that failed probe decoding.
    pub decode_errors: u64,
    /// Socket send failures (each consumes one attempt).
    pub send_errors: u64,
}

#[derive(Default)]
struct Counters {
    sent: AtomicU64,
    delivered: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    late_echoes: AtomicU64,
    shim_dropped: AtomicU64,
    kernel_stamped: AtomicU64,
    mono_stamped: AtomicU64,
    decode_errors: AtomicU64,
    send_errors: AtomicU64,
}

impl Counters {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> UdpStats {
        UdpStats {
            sent: self.sent.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            late_echoes: self.late_echoes.load(Ordering::Relaxed),
            shim_dropped: self.shim_dropped.load(Ordering::Relaxed),
            kernel_stamped: self.kernel_stamped.load(Ordering::Relaxed),
            mono_stamped: self.mono_stamped.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            send_errors: self.send_errors.load(Ordering::Relaxed),
        }
    }
}

/// One in-flight probe attempt, keyed by its sequence number.
#[derive(Clone, Copy, Debug)]
struct PendingProbe {
    sent_mono_us: u64,
    sent_wall_us: u64,
    /// Filled by the recv loop when the echo lands.
    echo: Option<Echo>,
}

/// A completed echo as consumed by the waiting prober. Carrying `kernel`
/// here lets the prober bump `delivered` and the stamp counter together,
/// so a stats snapshot can never observe one ahead of the other.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Echo {
    rtt_us: f64,
    kernel: bool,
}

/// How the recv loop's completion attempt resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EchoOutcome {
    /// First echo for a live attempt; `kernel` says which clock stamped
    /// the RTT.
    Matched { kernel: bool },
    /// The attempt already has an RTT (duplicate echo).
    Duplicate,
    /// No such attempt — it timed out and was cancelled, or never was.
    Unknown,
}

/// Sequence-number → in-flight-attempt table shared between probe
/// callers and recv loops.
struct PendingTable {
    slots: Mutex<HashMap<u32, PendingProbe>>,
    echoed: Condvar,
}

impl PendingTable {
    fn new() -> Self {
        Self {
            slots: Mutex::new(HashMap::new()),
            echoed: Condvar::new(),
        }
    }

    /// Poison-tolerant lock: a panicking prober must not wedge the recv
    /// loops (the table holds plain data, always consistent between
    /// statements).
    fn lock(&self) -> MutexGuard<'_, HashMap<u32, PendingProbe>> {
        self.slots.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn register(&self, seq: u32, sent_mono_us: u64, sent_wall_us: u64) {
        self.lock().insert(
            seq,
            PendingProbe {
                sent_mono_us,
                sent_wall_us,
                echo: None,
            },
        );
    }

    /// Called by a recv loop for each decoded echo. Uses the kernel wall
    /// stamp when it is present *and* not behind the send stamp (a wall
    /// clock stepped backwards mid-flight would otherwise produce a
    /// bogus RTT); falls back to the monotonic clock.
    fn complete(&self, seq: u32, kernel_wall_us: Option<u64>, now_mono_us: u64) -> EchoOutcome {
        let mut slots = self.lock();
        let Some(slot) = slots.get_mut(&seq) else {
            return EchoOutcome::Unknown;
        };
        if slot.echo.is_some() {
            return EchoOutcome::Duplicate;
        }
        let echo = match kernel_wall_us {
            Some(w) if w >= slot.sent_wall_us => Echo {
                rtt_us: (w - slot.sent_wall_us) as f64,
                kernel: true,
            },
            _ => Echo {
                rtt_us: now_mono_us.saturating_sub(slot.sent_mono_us) as f64,
                kernel: false,
            },
        };
        slot.echo = Some(echo);
        drop(slots);
        self.echoed.notify_all();
        EchoOutcome::Matched {
            kernel: echo.kernel,
        }
    }

    /// Blocks the caller until the attempt completes or `timeout_us`
    /// elapses. On success the slot is consumed; on timeout it is left
    /// for [`cancel`](Self::cancel) so a racing completion is still
    /// honored.
    fn await_echo(&self, seq: u32, timeout_us: u64, clock: &dyn ProbeClock) -> Option<Echo> {
        let deadline = clock.mono_us().saturating_add(timeout_us);
        let mut slots = self.lock();
        loop {
            if let Some(slot) = slots.get(&seq) {
                if slot.echo.is_some() {
                    return slots.remove(&seq).and_then(|s| s.echo);
                }
            } else {
                // Cancelled from elsewhere; nothing to wait for.
                return None;
            }
            let now = clock.mono_us();
            if now >= deadline {
                return None;
            }
            let wait = Duration::from_micros(deadline - now);
            let (guard, _timed_out) = self
                .echoed
                .wait_timeout(slots, wait)
                .unwrap_or_else(|p| p.into_inner());
            slots = guard;
        }
    }

    /// Removes the attempt, returning its echo if one raced the timeout
    /// and completed it first.
    fn cancel(&self, seq: u32) -> Option<Echo> {
        self.lock().remove(&seq).and_then(|s| s.echo)
    }

    #[cfg(test)]
    fn in_flight(&self) -> usize {
        self.lock().len()
    }
}

struct Shared {
    sockets: Vec<UdpSocket>,
    /// Responder addresses; a flow's `dst` node maps onto
    /// `addrs[dst % len]`.
    addrs: Vec<SocketAddr>,
    pending: PendingTable,
    clock: Arc<dyn ProbeClock>,
    retry: RetryPolicy,
    loss: Option<LossShim>,
    kernel_ts: bool,
    seq: AtomicU32,
    stats: Counters,
    shutdown: AtomicBool,
}

impl Shared {
    fn addr_of(&self, dst: u32) -> Option<SocketAddr> {
        if self.addrs.is_empty() {
            None
        } else {
            self.addrs.get(dst as usize % self.addrs.len()).copied()
        }
    }
}

/// Echo-receive loop: one per socket. Decodes every datagram, stamps it
/// (kernel stamp when available, monotonic otherwise) and completes the
/// matching pending attempt.
fn recv_loop(shared: &Shared, index: usize) {
    let Some(socket) = shared.sockets.get(index) else {
        return;
    };
    let mut buf = [0u8; 2048];
    while !shared.shutdown.load(Ordering::Acquire) {
        let (len, stamp) = match timestamp::recv_with_stamp(socket, &mut buf) {
            Ok(x) => x,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => {
                // Transient socket error: back off briefly instead of
                // spinning on a hot error loop.
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
        };
        let Some(frame) = buf.get(..len) else {
            continue;
        };
        let pkt = match decode_probe(Bytes::copy_from_slice(frame)) {
            Ok(p) => p,
            Err(_) => {
                Counters::bump(&shared.stats.decode_errors);
                continue;
            }
        };
        let now_mono = shared.clock.mono_us();
        match shared.pending.complete(pkt.seq, stamp, now_mono) {
            // The waiting prober does the delivered + stamp accounting
            // when it consumes the echo, keeping the counters coherent.
            EchoOutcome::Matched { .. } => {}
            EchoOutcome::Duplicate | EchoOutcome::Unknown => {
                Counters::bump(&shared.stats.late_echoes);
            }
        }
    }
}

/// Socket-backed [`DataPlane`]: real UDP probes to
/// [`Responder`](crate::responder::Responder) echo sockets.
///
/// Construct with [`UdpDataPlane::connect`] (or
/// [`UdpHarness::dataplane`] for the loopback harness). Dropping the
/// plane shuts the recv loops down and joins them.
pub struct UdpDataPlane {
    shared: Arc<Shared>,
    recv_threads: Vec<JoinHandle<()>>,
}

impl UdpDataPlane {
    /// Binds the probe socket pool and spawns one recv loop per socket.
    ///
    /// `responders` are the echo socket addresses (a flow's destination
    /// node selects `responders[dst % len]`); `loss` optionally installs
    /// the deterministic injected-loss shim.
    pub fn connect(
        responders: &[SocketAddr],
        cfg: &UdpConfig,
        loss: Option<LossShim>,
        clock: Arc<dyn ProbeClock>,
    ) -> io::Result<Self> {
        if responders.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "UdpDataPlane needs at least one responder address",
            ));
        }
        let count = cfg.sockets.max(1);
        let mut sockets = Vec::with_capacity(count);
        let mut kernel_ts = true;
        for _ in 0..count {
            let socket = UdpSocket::bind(cfg.bind)?;
            socket.set_read_timeout(Some(cfg.recv_poll.max(Duration::from_millis(1))))?;
            kernel_ts &= timestamp::enable(&socket);
            sockets.push(socket);
        }
        let shared = Arc::new(Shared {
            sockets,
            addrs: responders.to_vec(),
            pending: PendingTable::new(),
            clock,
            retry: cfg.retry,
            loss,
            kernel_ts,
            seq: AtomicU32::new(0),
            stats: Counters::default(),
            shutdown: AtomicBool::new(false),
        });
        let mut recv_threads = Vec::with_capacity(count);
        for i in 0..count {
            let sh = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("udp-recv-{i}"))
                .spawn(move || recv_loop(&sh, i))?;
            recv_threads.push(handle);
        }
        Ok(Self {
            shared,
            recv_threads,
        })
    }

    /// Counter snapshot.
    pub fn stats(&self) -> UdpStats {
        self.shared.stats.snapshot()
    }

    /// True when every socket accepted `SO_TIMESTAMP` (RTTs use kernel
    /// receive stamps; otherwise all fall back to the monotonic clock).
    pub fn kernel_timestamps(&self) -> bool {
        self.shared.kernel_ts
    }

    /// The retry schedule in force.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.shared.retry
    }
}

impl Drop for UdpDataPlane {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for handle in self.recv_threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl DataPlane for UdpDataPlane {
    fn probe(&self, route: &Route, flow: FlowKey, rng: &mut SmallRng) -> ProbeOutcome {
        self.probe_tagged(ProbeTag::UNTAGGED, route, flow, rng)
    }

    fn probe_tagged(
        &self,
        tag: ProbeTag,
        _route: &Route,
        flow: FlowKey,
        _rng: &mut SmallRng,
    ) -> ProbeOutcome {
        let sh = &*self.shared;
        if let Some(loss) = &sh.loss {
            if loss.drops(tag.window, tag.path_id) {
                // Decided before the socket: deterministic, and no
                // timeout wait is served for an injected drop.
                Counters::bump(&sh.stats.shim_dropped);
                return ProbeOutcome {
                    delivered: false,
                    rtt_us: 0.0,
                };
            }
        }
        let Some(addr) = sh.addr_of(flow.dst) else {
            Counters::bump(&sh.stats.send_errors);
            return ProbeOutcome {
                delivered: false,
                rtt_us: 0.0,
            };
        };
        for attempt in 0..sh.retry.attempts() {
            if attempt > 0 {
                Counters::bump(&sh.stats.retries);
            }
            // A fresh sequence number per attempt: an echo of an
            // abandoned attempt can never complete this one.
            let seq = sh.seq.fetch_add(1, Ordering::Relaxed);
            let sent_mono = sh.clock.mono_us();
            let sent_wall = sh.clock.wall_us();
            let wire = detector_simnet::encode_probe(&ProbePacket {
                waypoint: tag.waypoint,
                flow,
                seq,
                path_id: tag.path_id,
                timestamp_us: sent_wall,
            });
            sh.pending.register(seq, sent_mono, sent_wall);
            let Some(socket) = sh.sockets.get(seq as usize % sh.sockets.len()) else {
                sh.pending.cancel(seq);
                break;
            };
            if socket.send_to(wire.as_ref(), addr).is_err() {
                sh.pending.cancel(seq);
                Counters::bump(&sh.stats.send_errors);
                continue;
            }
            Counters::bump(&sh.stats.sent);
            let timeout = sh.retry.timeout_us(attempt);
            let echo = sh
                .pending
                .await_echo(seq, timeout, sh.clock.as_ref())
                // No echo inside the timeout: cancel, honoring one that
                // raced the deadline and completed first.
                .or_else(|| sh.pending.cancel(seq));
            if let Some(echo) = echo {
                Counters::bump(&sh.stats.delivered);
                Counters::bump(if echo.kernel {
                    &sh.stats.kernel_stamped
                } else {
                    &sh.stats.mono_stamped
                });
                return ProbeOutcome {
                    delivered: true,
                    rtt_us: echo.rtt_us,
                };
            }
            Counters::bump(&sh.stats.timeouts);
        }
        ProbeOutcome {
            delivered: false,
            rtt_us: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualProbeClock;

    const WALL0: u64 = 1_700_000_000_000_000;

    #[test]
    fn retry_policy_backs_off_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.attempts(), 3);
        assert_eq!(p.timeout_us(0), 20_000);
        assert_eq!(p.timeout_us(1), 80_000);
        assert_eq!(p.timeout_us(2), 100_000, "capped at max_timeout_us");
        let flat = RetryPolicy {
            attempt_timeout_us: 5_000,
            retries: 1,
            backoff_mult: 0, // Clamped to 1.
            max_timeout_us: 1_000,
        };
        assert_eq!(
            flat.timeout_us(0),
            5_000,
            "cap never shrinks below the base timeout"
        );
        assert_eq!(flat.timeout_us(5), 5_000);
    }

    #[test]
    fn pending_prefers_kernel_stamp() {
        let t = PendingTable::new();
        t.register(7, 1_000, WALL0);
        let out = t.complete(7, Some(WALL0 + 450), 999_999);
        assert_eq!(out, EchoOutcome::Matched { kernel: true });
        let clock = ManualProbeClock::starting_at(WALL0);
        assert_eq!(
            t.await_echo(7, 0, &clock),
            Some(Echo {
                rtt_us: 450.0,
                kernel: true
            })
        );
        assert_eq!(t.in_flight(), 0, "successful await consumes the slot");
    }

    #[test]
    fn pending_falls_back_to_mono_when_wall_steps_back() {
        // An NTP step put the kernel stamp *behind* the send stamp; the
        // monotonic difference must be used instead.
        let t = PendingTable::new();
        t.register(8, 2_000, WALL0);
        let out = t.complete(8, Some(WALL0 - 1), 2_700);
        assert_eq!(out, EchoOutcome::Matched { kernel: false });
        let clock = ManualProbeClock::default();
        assert_eq!(
            t.await_echo(8, 0, &clock),
            Some(Echo {
                rtt_us: 700.0,
                kernel: false
            })
        );
    }

    #[test]
    fn pending_falls_back_to_mono_without_kernel_stamp() {
        let t = PendingTable::new();
        t.register(9, 5_000, WALL0);
        assert_eq!(
            t.complete(9, None, 6_250),
            EchoOutcome::Matched { kernel: false }
        );
        let clock = ManualProbeClock::default();
        assert_eq!(
            t.await_echo(9, 0, &clock),
            Some(Echo {
                rtt_us: 1_250.0,
                kernel: false
            })
        );
    }

    #[test]
    fn late_echo_after_cancel_is_unknown_and_cannot_double_count() {
        let t = PendingTable::new();
        t.register(10, 0, WALL0);
        // The prober times out and cancels before any echo.
        assert_eq!(t.cancel(10), None);
        // The echo then straggles in: it must match nothing.
        assert_eq!(t.complete(10, Some(WALL0 + 5), 100), EchoOutcome::Unknown);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn duplicate_echo_is_flagged() {
        let t = PendingTable::new();
        t.register(11, 0, WALL0);
        assert_eq!(
            t.complete(11, Some(WALL0 + 10), 10),
            EchoOutcome::Matched { kernel: true }
        );
        assert_eq!(t.complete(11, Some(WALL0 + 12), 12), EchoOutcome::Duplicate);
        let clock = ManualProbeClock::default();
        assert_eq!(
            t.await_echo(11, 0, &clock),
            Some(Echo {
                rtt_us: 10.0,
                kernel: true
            }),
            "first RTT kept"
        );
    }

    #[test]
    fn cancel_honors_racing_completion() {
        let t = PendingTable::new();
        t.register(12, 100, WALL0);
        assert_eq!(
            t.complete(12, None, 350),
            EchoOutcome::Matched { kernel: false }
        );
        // Timeout path: await gave up, but cancel finds the RTT.
        assert_eq!(
            t.cancel(12),
            Some(Echo {
                rtt_us: 250.0,
                kernel: false
            })
        );
        assert_eq!(t.complete(12, None, 400), EchoOutcome::Unknown);
    }

    #[test]
    fn await_echo_times_out_on_a_manual_clock() {
        let t = PendingTable::new();
        let clock = ManualProbeClock::default();
        clock.advance_us(50);
        t.register(13, 50, WALL0);
        // Deadline = 50 + 0 → immediate timeout; the slot stays for
        // cancel().
        assert_eq!(t.await_echo(13, 0, &clock), None);
        assert_eq!(t.in_flight(), 1);
        assert_eq!(t.cancel(13), None);
    }

    #[test]
    fn loss_shim_is_deterministic_and_spares_in_rack() {
        let a = LossShim::new(42, 200);
        let b = LossShim::new(42, 200);
        let mut dropped = 0usize;
        for window in 0..20u64 {
            for path in 0..100u32 {
                assert_eq!(a.drops(window, path), b.drops(window, path));
                if a.drops(window, path) {
                    dropped += 1;
                }
            }
        }
        // 20% nominal over 2000 trials: allow a generous band.
        assert!((200..=600).contains(&dropped), "dropped {dropped}/2000");
        for window in 0..50u64 {
            assert!(!a.drops(window, ProbeTag::IN_RACK));
        }
        let off = LossShim::new(42, 0);
        for window in 0..20u64 {
            for path in 0..100u32 {
                assert!(!off.drops(window, path));
            }
        }
    }

    #[test]
    fn loss_shim_varies_with_seed_and_clamps_rate() {
        let a = LossShim::new(1, 500);
        let b = LossShim::new(2, 500);
        let differs = (0..200u32).any(|p| a.drops(0, p) != b.drops(0, p));
        assert!(differs, "different seeds must drop different probes");
        let saturated = LossShim::new(3, 5_000); // Clamped to 1000/1000.
        for path in 0..50u32 {
            assert!(saturated.drops(0, path));
        }
    }

    #[test]
    fn connect_rejects_empty_responder_list() {
        let clock = Arc::new(ManualProbeClock::default());
        let err = UdpDataPlane::connect(&[], &UdpConfig::default(), None, clock);
        assert!(err.is_err());
    }
}
