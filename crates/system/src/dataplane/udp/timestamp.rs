//! Kernel receive timestamps: `SO_TIMESTAMP` + `recvmsg` cmsg parsing.
//!
//! A userspace `recv` stamps an echo *after* the scheduler got around to
//! waking the recv loop; the kernel's `SO_TIMESTAMP` ancillary data
//! records when the datagram actually hit the socket, cutting scheduling
//! jitter out of the RTT. The stamp lives in the CLOCK_REALTIME domain,
//! so the sender's wall-clock send stamp
//! ([`ProbeClock::wall_us`](crate::clock::ProbeClock::wall_us))
//! subtracts cleanly from it.
//!
//! No libc binding is available in this workspace, so the two syscalls
//! are declared by hand behind a `target_os = "linux"` gate; everything
//! degrades to plain `recv` + `None` (monotonic fallback in the caller)
//! when the platform refuses — [`enable`] reports whether the kernel
//! accepted the option, and a missing/foreign cmsg simply yields no
//! stamp.

use std::io;
use std::net::UdpSocket;

/// Arms kernel receive timestamping on `socket`; false when the
/// platform or kernel refuses (callers fall back to monotonic stamps).
pub(crate) fn enable(socket: &UdpSocket) -> bool {
    imp::enable(socket)
}

/// Receives one datagram: its length and the kernel receive stamp
/// (CLOCK_REALTIME microseconds) when one was attached.
pub(crate) fn recv_with_stamp(
    socket: &UdpSocket,
    buf: &mut [u8],
) -> io::Result<(usize, Option<u64>)> {
    imp::recv_with_stamp(socket, buf)
}

#[cfg(target_os = "linux")]
mod imp {
    use std::io;
    use std::net::UdpSocket;
    use std::os::fd::AsRawFd;

    const SOL_SOCKET: i32 = 1;
    /// `SO_TIMESTAMP` / `SCM_TIMESTAMP` (the `_OLD` variant all 64-bit
    /// Linux ABIs carry).
    const SO_TIMESTAMP: i32 = 29;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Timeval {
        tv_sec: i64,
        tv_usec: i64,
    }

    #[repr(C)]
    struct IoVec {
        iov_base: *mut core::ffi::c_void,
        iov_len: usize,
    }

    #[repr(C)]
    struct MsgHdr {
        msg_name: *mut core::ffi::c_void,
        msg_namelen: u32,
        msg_iov: *mut IoVec,
        msg_iovlen: usize,
        msg_control: *mut core::ffi::c_void,
        msg_controllen: usize,
        msg_flags: i32,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct CmsgHdr {
        cmsg_len: usize,
        cmsg_level: i32,
        cmsg_type: i32,
    }

    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const core::ffi::c_void,
            optlen: u32,
        ) -> i32;
        fn recvmsg(fd: i32, msg: *mut MsgHdr, flags: i32) -> isize;
    }

    pub(super) fn enable(socket: &UdpSocket) -> bool {
        let one: i32 = 1;
        // SAFETY: the fd is live for the duration of the call (borrowed
        // from `socket`) and `optval`/`optlen` describe a single local
        // i32 that outlives it.
        let rc = unsafe {
            setsockopt(
                socket.as_raw_fd(),
                SOL_SOCKET,
                SO_TIMESTAMP,
                (&one as *const i32).cast(),
                core::mem::size_of::<i32>() as u32,
            )
        };
        rc == 0
    }

    pub(super) fn recv_with_stamp(
        socket: &UdpSocket,
        buf: &mut [u8],
    ) -> io::Result<(usize, Option<u64>)> {
        let mut iov = IoVec {
            iov_base: buf.as_mut_ptr().cast(),
            iov_len: buf.len(),
        };
        // Room for one cmsghdr + timeval with slack; zeroed so a short
        // kernel write can never leave us parsing stack garbage.
        let mut control = [0u8; 64];
        let mut hdr = MsgHdr {
            msg_name: core::ptr::null_mut(),
            msg_namelen: 0,
            msg_iov: &mut iov,
            msg_iovlen: 1,
            msg_control: control.as_mut_ptr().cast(),
            msg_controllen: control.len(),
            msg_flags: 0,
        };
        // SAFETY: every pointer in `hdr` refers to a live local (`buf`,
        // `iov`, `control`) for the whole call; lengths match the
        // buffers they describe.
        let n = unsafe { recvmsg(socket.as_raw_fd(), &mut hdr, 0) };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        let written = hdr.msg_controllen.min(control.len());
        Ok((
            n as usize,
            parse_stamp(control.get(..written).unwrap_or(&[])),
        ))
    }

    /// Extracts the `SCM_TIMESTAMP` timeval from the first control
    /// message, if that is what the kernel attached.
    fn parse_stamp(control: &[u8]) -> Option<u64> {
        const HDR: usize = core::mem::size_of::<CmsgHdr>();
        const TV: usize = core::mem::size_of::<Timeval>();
        if control.len() < HDR + TV {
            return None;
        }
        // SAFETY: length checked above; read_unaligned tolerates the
        // byte buffer's alignment.
        let cmsg: CmsgHdr = unsafe { core::ptr::read_unaligned(control.as_ptr().cast()) };
        if cmsg.cmsg_level != SOL_SOCKET
            || cmsg.cmsg_type != SO_TIMESTAMP
            || cmsg.cmsg_len < HDR + TV
        {
            return None;
        }
        // SAFETY: `control.len() >= HDR + TV` puts the whole timeval in
        // bounds after the header.
        let tv: Timeval = unsafe { core::ptr::read_unaligned(control.as_ptr().add(HDR).cast()) };
        let sec = u64::try_from(tv.tv_sec).ok()?;
        let usec = u64::try_from(tv.tv_usec).ok()?;
        Some(sec.saturating_mul(1_000_000).saturating_add(usec))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn kernel_accepts_so_timestamp() {
            let s = UdpSocket::bind("127.0.0.1:0").unwrap();
            assert!(enable(&s), "linux must accept SO_TIMESTAMP");
        }

        #[test]
        fn recvmsg_returns_data_and_stamp() {
            let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
            assert!(enable(&rx));
            let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
            tx.send_to(b"stamp-me", rx.local_addr().unwrap()).unwrap();
            let mut buf = [0u8; 64];
            let (n, stamp) = recv_with_stamp(&rx, &mut buf).unwrap();
            assert_eq!(&buf[..n], b"stamp-me");
            let stamp = stamp.expect("kernel stamp attached");
            // A sane unix-epoch microsecond value (after 2020-09-13).
            assert!(stamp > 1_600_000_000_000_000, "stamp {stamp}");
        }

        #[test]
        fn foreign_cmsg_yields_no_stamp() {
            let mut control = [0u8; 64];
            let cmsg = CmsgHdr {
                cmsg_len: core::mem::size_of::<CmsgHdr>() + core::mem::size_of::<Timeval>(),
                cmsg_level: SOL_SOCKET,
                cmsg_type: SO_TIMESTAMP + 1, // Not a timestamp.
            };
            // SAFETY (test): buffer is large enough for the header.
            unsafe { core::ptr::write_unaligned(control.as_mut_ptr().cast(), cmsg) };
            assert_eq!(parse_stamp(&control), None);
            assert_eq!(parse_stamp(&[]), None);
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use std::io;
    use std::net::UdpSocket;

    pub(super) fn enable(_socket: &UdpSocket) -> bool {
        false
    }

    pub(super) fn recv_with_stamp(
        socket: &UdpSocket,
        buf: &mut [u8],
    ) -> io::Result<(usize, Option<u64>)> {
        socket.recv(buf).map(|n| (n, None))
    }
}
