//! Loopback harness: real [`Responder`] echo sockets, in process.
//!
//! Spawns N UDP sockets on `127.0.0.1`, each served by a thread running
//! the stateless [`Responder`] packet transformation — validate, reverse
//! the flow, stamp, echo to the datagram's source address. This is the
//! CI face of the UDP data plane: every probe crosses the kernel's
//! loopback stack as a real datagram, no privileges or NICs required.
//!
//! Stray traffic (well-formed probes whose embedded logical port is not
//! the harness's) is dropped silently and counted — the behavior
//! [`PacketError::WrongPort`] exists to make possible without inflating
//! corruption counters.

use std::io;
use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use detector_simnet::PacketError;

use super::{LossShim, UdpConfig, UdpDataPlane};
use crate::clock::ProbeClock;
use crate::responder::Responder;

/// Snapshot of harness-side counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HarnessStats {
    /// Probes validated and echoed.
    pub echoed: u64,
    /// Well-formed probes to the wrong logical port, dropped silently.
    pub stray: u64,
    /// Datagrams rejected by the codec (truncated/malformed/checksum).
    pub corrupt: u64,
}

#[derive(Default)]
struct SharedStats {
    echoed: AtomicU64,
    stray: AtomicU64,
    corrupt: AtomicU64,
}

/// In-process responder pool backing a [`UdpDataPlane`] over loopback.
///
/// Dropping the harness shuts its responder threads down and joins them.
pub struct UdpHarness {
    addrs: Vec<SocketAddr>,
    dport: u16,
    clock: Arc<dyn ProbeClock>,
    stats: Arc<SharedStats>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl UdpHarness {
    /// Spawns `responders` echo sockets (at least one) serving logical
    /// port `dport`, stamping replies from `clock`.
    pub fn spawn(responders: usize, dport: u16, clock: Arc<dyn ProbeClock>) -> io::Result<Self> {
        let count = responders.max(1);
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(SharedStats::default());
        let mut addrs = Vec::with_capacity(count);
        let mut threads = Vec::with_capacity(count);
        for i in 0..count {
            let socket = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0))?;
            socket.set_read_timeout(Some(Duration::from_millis(20)))?;
            addrs.push(socket.local_addr()?);
            let sd = Arc::clone(&shutdown);
            let st = Arc::clone(&stats);
            let ck = Arc::clone(&clock);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("udp-responder-{i}"))
                    .spawn(move || responder_loop(&socket, dport, ck.as_ref(), &sd, &st))?,
            );
        }
        Ok(Self {
            addrs,
            dport,
            clock,
            stats,
            shutdown,
            threads,
        })
    }

    /// The echo sockets' addresses, in spawn order.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// The logical probe port the responders serve.
    pub fn dport(&self) -> u16 {
        self.dport
    }

    /// Responder-side counter snapshot.
    pub fn stats(&self) -> HarnessStats {
        HarnessStats {
            echoed: self.stats.echoed.load(Ordering::Relaxed),
            stray: self.stats.stray.load(Ordering::Relaxed),
            corrupt: self.stats.corrupt.load(Ordering::Relaxed),
        }
    }

    /// A [`UdpDataPlane`] wired to this harness's responders, sharing
    /// its clock.
    pub fn dataplane(&self, cfg: &UdpConfig, loss: Option<LossShim>) -> io::Result<UdpDataPlane> {
        UdpDataPlane::connect(&self.addrs, cfg, loss, Arc::clone(&self.clock))
    }
}

impl Drop for UdpHarness {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

fn responder_loop(
    socket: &UdpSocket,
    dport: u16,
    clock: &dyn ProbeClock,
    shutdown: &AtomicBool,
    stats: &SharedStats,
) {
    let responder = Responder::new(dport);
    let mut buf = [0u8; 2048];
    while !shutdown.load(Ordering::Acquire) {
        let (len, src) = match socket.recv_from(&mut buf) {
            Ok(x) => x,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
        };
        let Some(frame) = buf.get(..len) else {
            continue;
        };
        match responder.echo(Bytes::copy_from_slice(frame), clock.wall_us()) {
            Ok(reply) => {
                // Echo to wherever the probe came from; losing the send
                // surfaces as a probe timeout, never a responder crash.
                let _ = socket.send_to(reply.as_ref(), src);
                stats.echoed.fetch_add(1, Ordering::Relaxed);
            }
            // The WrongPort bugfix in action: stray traffic is dropped
            // silently, not counted as corruption.
            Err(PacketError::WrongPort) => {
                stats.stray.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                stats.corrupt.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::RetryPolicy;
    use super::*;
    use crate::clock::HostClock;
    use crate::dataplane::{DataPlane, ProbeTag};
    use detector_simnet::{encode_probe, FlowKey, ProbePacket};
    use detector_topology::Route;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn empty_route() -> Route {
        Route {
            nodes: vec![],
            links: vec![],
        }
    }

    #[test]
    fn loopback_probe_round_trips() {
        let clock = Arc::new(HostClock::new());
        let harness = UdpHarness::spawn(2, 53_533, clock).unwrap();
        let plane = harness.dataplane(&UdpConfig::default(), None).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let tag = ProbeTag {
            window: 3,
            path_id: 12,
            waypoint: 42,
        };
        let out = plane.probe_tagged(
            tag,
            &empty_route(),
            FlowKey::udp(1, 2, 33_000, 53_533),
            &mut rng,
        );
        assert!(out.delivered, "loopback echo must arrive");
        assert!(out.rtt_us >= 0.0);
        let stats = plane.stats();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.sent, 1, "no retry needed on loopback");
        assert_eq!(
            stats.kernel_stamped + stats.mono_stamped,
            1,
            "exactly one stamping domain used"
        );
        assert_eq!(harness.stats().echoed, 1);
    }

    #[test]
    fn wrong_logical_port_is_strayed_then_retried_to_timeout() {
        let clock = Arc::new(HostClock::new());
        let harness = UdpHarness::spawn(1, 53_533, clock).unwrap();
        let cfg = UdpConfig {
            retry: RetryPolicy {
                attempt_timeout_us: 2_000,
                retries: 1,
                backoff_mult: 2,
                max_timeout_us: 4_000,
            },
            ..UdpConfig::default()
        };
        let plane = harness.dataplane(&cfg, None).unwrap();
        let mut rng = SmallRng::seed_from_u64(8);
        // dport 9 ≠ the harness's logical port: silently dropped at the
        // responder, so every attempt times out.
        let out = plane.probe(&empty_route(), FlowKey::udp(1, 2, 33_000, 9), &mut rng);
        assert!(!out.delivered);
        let stats = plane.stats();
        assert_eq!(stats.sent, 2, "first attempt + one retry");
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.timeouts, 2);
        assert_eq!(stats.decode_errors, 0, "stray probes are not corruption");
        let hs = harness.stats();
        assert_eq!(hs.stray, 2);
        assert_eq!(hs.corrupt, 0);
        assert_eq!(hs.echoed, 0);
    }

    #[test]
    fn corrupt_datagram_counts_against_the_codec() {
        let clock = Arc::new(HostClock::new());
        let harness = UdpHarness::spawn(1, 53_533, clock).unwrap();
        let sender = UdpSocket::bind("127.0.0.1:0").unwrap();
        let addr = harness.addrs()[0];
        // A probe with a flipped payload byte, and outright garbage.
        let mut raw = encode_probe(&ProbePacket {
            waypoint: 0,
            flow: FlowKey::udp(1, 2, 33_000, 53_533),
            seq: 1,
            path_id: 0,
            timestamp_us: 0,
        })
        .to_vec();
        // Flip a checksum byte inside the inner header (one IPv4 header in).
        raw[20 + 8] ^= 0xff;
        sender.send_to(&raw, addr).unwrap();
        sender.send_to(&[0u8; 64], addr).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while harness.stats().corrupt < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let hs = harness.stats();
        assert_eq!(hs.corrupt, 2);
        assert_eq!(hs.stray, 0);
        assert_eq!(hs.echoed, 0);
    }

    #[test]
    fn shimmed_probe_never_touches_the_wire() {
        let clock = Arc::new(HostClock::new());
        let harness = UdpHarness::spawn(1, 53_533, clock).unwrap();
        // 1000‰ = drop everything (matrix paths).
        let shim = LossShim::new(5, 1000);
        let plane = harness
            .dataplane(&UdpConfig::default(), Some(shim))
            .unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let tag = ProbeTag {
            window: 0,
            path_id: 3,
            waypoint: 0,
        };
        let out = plane.probe_tagged(
            tag,
            &empty_route(),
            FlowKey::udp(1, 2, 33_000, 53_533),
            &mut rng,
        );
        assert!(!out.delivered);
        let stats = plane.stats();
        assert_eq!(stats.shim_dropped, 1);
        assert_eq!(stats.sent, 0, "shimmed drops short-circuit the socket");
        assert_eq!(stats.timeouts, 0, "no timeout is served for a shimmed drop");
    }
}
