//! The full monitoring loop: controller → pingers → diagnoser on a
//! simulated clock (§3.2's three-step cycle).

use detector_core::pll::{Diagnosis, LossClassification};
use detector_core::pmc::{PmcError, ProbeMatrix};
use detector_core::types::LinkId;
use detector_simnet::Fabric;
use detector_topology::DcnTopology;
use rand::rngs::SmallRng;

use crate::clock::SimClock;
use crate::controller::{Controller, Deployment};
use crate::diagnoser::Diagnoser;
use crate::pinger::Pinger;
use crate::watchdog::Watchdog;
use crate::SystemConfig;

/// Outcome of one 30-second window.
#[derive(Clone, Debug)]
pub struct WindowResult {
    /// Window index.
    pub window: u64,
    /// Simulated start time of the window, seconds.
    pub start_s: u64,
    /// Probes sent across all pingers this window (detection probes,
    /// including loss confirmations).
    pub probes_sent: u64,
    /// Number of aggregated path observations.
    pub num_observations: usize,
    /// The PLL diagnosis for the window.
    pub diagnosis: Diagnosis,
}

/// A running deTector deployment against a simulated fabric.
pub struct MonitorRun<'a> {
    topo: &'a dyn DcnTopology,
    cfg: SystemConfig,
    controller: Controller<'a>,
    deployment: Deployment,
    diagnoser: Diagnoser,
    /// The watchdog, exposed for scenario scripting (e.g. killing a
    /// pinger server mid-run).
    pub watchdog: Watchdog,
    clock: SimClock,
    window: u64,
}

impl<'a> MonitorRun<'a> {
    /// Boots the system: computes the first probe matrix and pinglists.
    pub fn new(topo: &'a dyn DcnTopology, cfg: SystemConfig) -> Result<Self, PmcError> {
        let mut controller = Controller::new(topo, cfg.clone());
        let watchdog = Watchdog::new();
        let deployment = controller.build_deployment(watchdog.unhealthy_set())?;
        let diagnoser = Diagnoser::new(deployment.matrix.clone(), cfg.pll);
        Ok(Self {
            topo,
            cfg,
            controller,
            deployment,
            diagnoser,
            watchdog,
            clock: SimClock::new(),
            window: 0,
        })
    }

    /// The probe matrix currently deployed.
    pub fn matrix(&self) -> &ProbeMatrix {
        &self.deployment.matrix
    }

    /// The monitored topology.
    pub fn topology(&self) -> &'a dyn DcnTopology {
        self.topo
    }

    /// Scheduled detection probes per window (before loss confirmations):
    /// pingers × rate × window.
    pub fn scheduled_probes_per_window(&self) -> u64 {
        self.deployment.pinglists.len() as u64
            * (self.cfg.probe_rate_pps * self.cfg.window_s as f64) as u64
    }

    /// Current simulated time, seconds.
    pub fn now_s(&self) -> u64 {
        self.clock.now_s()
    }

    /// Classifies the loss pattern behind a suspect link from a past
    /// window's per-flow counters (§7 — narrows the operator's diagnosis
    /// scope: link down vs blackhole vs random corruption vs congestion).
    pub fn classify_suspect(&self, window: u64, link: LinkId) -> Option<LossClassification> {
        self.diagnoser
            .classify_suspect(window, link, &self.watchdog)
    }

    /// Runs one window: every pinger probes its list against `fabric`,
    /// reports are ingested, the watchdog updates, and the diagnoser runs
    /// PLL.
    pub fn run_window(&mut self, fabric: &Fabric<'_>, rng: &mut SmallRng) -> WindowResult {
        // Controller cycle boundary: recompute pinglists (topology or
        // health may have changed). The matrix itself is recomputed too,
        // matching §6.1's 10-minute refresh. A zero cycle_s would make
        // `is_multiple_of` false forever (never refresh) — treat it as a
        // misconfiguration loudly rather than serving stale pinglists.
        assert!(self.cfg.cycle_s != 0, "SystemConfig::cycle_s must be > 0");
        if self.window > 0 && self.clock.now_s().is_multiple_of(self.cfg.cycle_s) {
            if let Ok(dep) = self
                .controller
                .build_deployment(self.watchdog.unhealthy_set())
            {
                self.diagnoser.set_matrix(dep.matrix.clone());
                self.deployment = dep;
            }
        }

        let mut probes_sent = 0u64;
        for list in &self.deployment.pinglists {
            if !self.watchdog.is_healthy(list.pinger) {
                continue;
            }
            let pinger = Pinger::bind(list.clone(), fabric);
            let report = pinger.run_window(fabric, &self.cfg, self.window, rng);
            probes_sent += report.total_sent();
            // Server health comes from the management plane (heartbeats),
            // not from dataplane loss: an all-lost report usually means the
            // pinger's rack uplink or ToR failed — precisely what the
            // diagnoser must see, not a reason to silence the pinger.
            // External health marks (watchdog.mark_unhealthy) still exclude
            // reports and pinger duty.
            self.diagnoser.ingest(report);
        }

        let event = self.diagnoser.diagnose(self.window, &self.watchdog);
        let start_s = self.clock.now_s();
        self.clock.advance_s(self.cfg.window_s);
        let window = self.window;
        self.window += 1;
        // Keep a few windows of history, as the paper's database would.
        self.diagnoser.prune_before(window.saturating_sub(20));

        WindowResult {
            window,
            start_s,
            probes_sent,
            num_observations: event.num_observations,
            diagnosis: event.diagnosis,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detector_core::pll::evaluate_diagnosis;
    use detector_simnet::{Fabric, FailureGenerator, LossDiscipline};
    use detector_topology::Fattree;
    use rand::SeedableRng;

    #[test]
    fn clean_fabric_produces_clean_diagnoses() {
        let ft = Fattree::new(4).unwrap();
        let mut run = MonitorRun::new(&ft, SystemConfig::default()).unwrap();
        let fabric = Fabric::quiet(&ft);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..3 {
            let w = run.run_window(&fabric, &mut rng);
            assert!(w.diagnosis.suspects.is_empty(), "window {}", w.window);
            assert!(w.probes_sent > 0);
        }
    }

    #[test]
    fn full_link_failure_is_localized_within_one_window() {
        let ft = Fattree::new(4).unwrap();
        let mut run = MonitorRun::new(&ft, SystemConfig::default()).unwrap();
        let mut fabric = Fabric::quiet(&ft);
        let bad = ft.ac_link(2, 1, 0);
        fabric.set_discipline_both(bad, LossDiscipline::Full);
        let mut rng = SmallRng::seed_from_u64(2);
        let w = run.run_window(&fabric, &mut rng);
        assert!(
            w.diagnosis.suspect_links().contains(&bad),
            "suspects: {:?}",
            w.diagnosis.suspect_links()
        );
    }

    #[test]
    fn random_scenarios_reach_high_accuracy() {
        let ft = Fattree::new(4).unwrap();
        let mut run = MonitorRun::new(&ft, SystemConfig::default()).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let gen = FailureGenerator::links_only().with_min_rate(0.05);
        let mut acc_sum = 0.0;
        let n = 10;
        for i in 0..n {
            let mut fabric = Fabric::quiet(&ft);
            let scenario = gen.sample(&ft, 1, &mut rng);
            fabric.apply_scenario(&scenario);
            let w = run.run_window(&fabric, &mut rng);
            let m = evaluate_diagnosis(&w.diagnosis.suspect_links(), &scenario.ground_truth(&ft));
            acc_sum += m.accuracy;
            let _ = i;
        }
        let acc = acc_sum / n as f64;
        assert!(acc >= 0.7, "accuracy {acc}");
    }

    #[test]
    fn clock_advances_per_window() {
        let ft = Fattree::new(4).unwrap();
        let mut run = MonitorRun::new(&ft, SystemConfig::default()).unwrap();
        let fabric = Fabric::quiet(&ft);
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(run.now_s(), 0);
        run.run_window(&fabric, &mut rng);
        assert_eq!(run.now_s(), 30);
    }
}
