//! The incremental probe planner: a partitioned, patchable probe plan.
//!
//! [`ProbePlan`] keeps the probe matrix *decomposed* — one [`PlanCell`]
//! per independent PMC subproblem (Observation 1 of §4.3), each holding
//! its link universe, its candidate source and its current solution.
//! When the live topology changes, [`ProbePlan::apply`] re-solves only
//! the cells whose universes intersect the delta and splices the result
//! back, instead of recomputing the whole matrix the way the paper's
//! controller does on its 10-minute cycle.
//!
//! Two candidate-source modes mirror the controller's former split:
//!
//! * **materialized** — small topologies enumerate every candidate once;
//!   cells own their slice of the pristine candidate set and re-solve via
//!   [`resolve_subproblem`] with the offline links excluded;
//! * **symmetric** — large topologies never materialize candidates. One
//!   pristine base solution per isomorphism class is replicated to every
//!   component; an affected component maps its offline links back into
//!   base coordinates through [`BaseComponent::replicate_link`], wraps a
//!   fresh base provider in an [`ExcludingProvider`], re-solves, and
//!   replicates the restricted solution to its own coordinates only.
//!
//! In both modes a cell whose exclusions return to empty restores its
//! cached pristine solution without solving anything, so drain/undrain
//! cycles cost one re-solve on the way down and nothing on the way up.
//!
//! Determinism makes incremental and from-scratch planning agree exactly:
//! a patched plan and a fresh [`ProbePlan::new`] over the same offline
//! set run the identical per-cell procedure, so their matrices carry the
//! same paths, path for path (asserted by the `live_topology` property
//! tests).
//!
//! # Segmented path-id allocation
//!
//! Every cell owns a stable [`PathIdRange`]: its paths are numbered
//! densely from the range's base, and the range reserves *headroom*
//! (IdHeadroom) beyond the current path count. A re-solve that
//! changes one cell's path count therefore never shifts any other cell's
//! ids — pinglists of untouched cells stay bit-identical and are not
//! re-dispatched. Only when a cell's solution outgrows its capacity is
//! the cell *re-based* onto a fresh range allocated past every existing
//! one ([`ReplanStats::cells_rebased`]); retired ranges are never reused
//! within a plan's lifetime, so a stale id can never alias a live path.

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Instant;

use detector_core::pmc::{
    construct_decomposed_parallel, construct_with_provider, decompose, resolve_subproblem,
    resolve_subproblem_seeded, Achieved, ExcludingProvider, JobPool, PmcConfig, PmcError,
    ProbeMatrix, SubSolution, Subproblem,
};
use detector_core::types::{LinkId, PathIdRange, ProbePath};
use detector_topology::{BaseComponent, SharedTopology};

/// Below this many original paths the planner materializes the full
/// candidate set; above it, the symmetry plan is used (same threshold the
/// controller has always applied).
pub const EXHAUSTIVE_LIMIT: u128 = 300_000;

/// Headroom policy for per-cell [`PathIdRange`]s: how much slack a
/// cell's range reserves beyond its current path count, so ordinary
/// churn re-solves stay inside the range and never force a re-base.
///
/// A range for `len` paths gets `len + max(len · pct / 100, min)` ids.
/// The defaults (50 %, minimum 8) absorb any realistic growth of a
/// restricted re-solve; [`IdHeadroom::NONE`] reserves nothing, making
/// every growth an overflow — which is how the re-base path is tested.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IdHeadroom {
    /// Slack as a percentage of the cell's path count.
    pub pct: u32,
    /// Minimum slack in ids, regardless of cell size.
    pub min: u32,
}

impl Default for IdHeadroom {
    fn default() -> Self {
        Self { pct: 50, min: 8 }
    }
}

impl IdHeadroom {
    /// No headroom at all: capacity equals the current path count.
    pub const NONE: Self = Self { pct: 0, min: 0 };

    /// Range capacity for a cell currently holding `len` paths.
    pub fn capacity(&self, len: usize) -> u32 {
        let len = len as u64;
        let slack = (len * u64::from(self.pct) / 100).max(u64::from(self.min));
        u32::try_from(len + slack).expect("path-id space exhausted")
    }
}

/// Where a cell's candidates come from when it must be re-solved.
#[derive(Clone, Debug)]
enum CellSource {
    /// The cell's pristine candidate slice, fully materialized.
    Materialized(Vec<ProbePath>),
    /// Replica `replica` of symmetry base `base`: candidates are pulled
    /// from a fresh base provider and re-homed on demand.
    Replica {
        base: usize,
        replica: u32,
        /// Replica-universe link → base-universe link.
        to_base: HashMap<LinkId, LinkId>,
    },
}

/// One independent subproblem of the partitioned plan.
#[derive(Clone, Debug)]
struct PlanCell {
    /// Sorted link universe (in final/replica coordinates).
    universe: Vec<LinkId>,
    /// Sorted offline links currently excluded from this cell.
    excluded: Vec<LinkId>,
    source: CellSource,
    /// Current solution, paths in final coordinates.
    solution: SubSolution,
    /// Cached pristine (no-exclusion) solution for O(1) restore; filled
    /// lazily for cells that were born with exclusions.
    pristine: Option<SubSolution>,
    /// The stable id range this cell numbers its paths from. Re-assigned
    /// only when the solution outgrows the range (a re-base).
    range: PathIdRange,
}

impl PlanCell {
    fn intersects(&self, links: &[LinkId]) -> bool {
        links.iter().any(|l| self.universe.binary_search(l).is_ok())
    }
}

/// What one [`ProbePlan::apply`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplanStats {
    /// Cells re-solved from their candidate source.
    pub cells_resolved: usize,
    /// Cells restored from their cached pristine solution (no solving).
    pub cells_restored: usize,
    /// Total cells in the plan.
    pub cells_total: usize,
    /// Cells whose new solution overflowed their id range and were moved
    /// to a fresh range (their paths — and only theirs — change ids).
    pub cells_rebased: usize,
    /// Wall-clock time of the patch, microseconds.
    pub replan_micros: u64,
}

/// A partitioned, incrementally patchable probe plan.
#[derive(Clone)]
pub struct ProbePlan {
    topo: SharedTopology,
    cfg: PmcConfig,
    num_links: usize,
    cells: Vec<PlanCell>,
    /// Offline probe links currently applied to the plan.
    offline: HashSet<LinkId>,
    /// Headroom policy for cell id ranges.
    headroom: IdHeadroom,
    /// First path id past every range ever allocated; re-bases allocate
    /// from here, so retired ids are never reused.
    next_base: u32,
}

impl ProbePlan {
    /// Builds a plan for `topo` with `offline` links excluded from the
    /// start, choosing materialized vs symmetric mode by
    /// [`EXHAUSTIVE_LIMIT`].
    pub fn new(
        topo: SharedTopology,
        cfg: &PmcConfig,
        offline: &HashSet<LinkId>,
    ) -> Result<Self, PmcError> {
        Self::with_exhaustive_limit(topo, cfg, offline, EXHAUSTIVE_LIMIT)
    }

    /// [`ProbePlan::new`] with an explicit materialization threshold
    /// (tests and benches use 0 to force the symmetric path).
    pub fn with_exhaustive_limit(
        topo: SharedTopology,
        cfg: &PmcConfig,
        offline: &HashSet<LinkId>,
        exhaustive_limit: u128,
    ) -> Result<Self, PmcError> {
        Self::with_options(topo, cfg, offline, exhaustive_limit, IdHeadroom::default())
    }

    /// Fully explicit construction: materialization threshold plus the
    /// id-range headroom policy.
    pub fn with_options(
        topo: SharedTopology,
        cfg: &PmcConfig,
        offline: &HashSet<LinkId>,
        exhaustive_limit: u128,
        headroom: IdHeadroom,
    ) -> Result<Self, PmcError> {
        let num_links = topo.probe_links();
        let offline: HashSet<LinkId> = offline
            .iter()
            .copied()
            .filter(|l| l.index() < num_links)
            .collect();
        let mut cells = if topo.original_path_count() <= exhaustive_limit {
            Self::build_materialized(&topo, cfg, &offline)?
        } else {
            Self::build_symmetric(&topo, cfg, &offline)?
        };
        // Assign every cell its initial id range, in cell order.
        let mut next_base = 0u32;
        for cell in &mut cells {
            let capacity = headroom.capacity(cell.solution.paths.len());
            cell.range = PathIdRange::new(next_base, capacity);
            next_base = cell.range.end();
        }
        Ok(Self {
            topo,
            cfg: cfg.clone(),
            num_links,
            cells,
            offline,
            headroom,
            next_base,
        })
    }

    fn build_materialized(
        topo: &SharedTopology,
        cfg: &PmcConfig,
        offline: &HashSet<LinkId>,
    ) -> Result<Vec<PlanCell>, PmcError> {
        // Decompose the *pristine* candidate set so the cell partition is
        // independent of the current exclusions (a mutated topology could
        // otherwise split components and break incremental/from-scratch
        // agreement). `cfg.decompose == false` keeps the single-cell
        // monolith, exactly like `construct`'s strawman path.
        let candidates = topo.enumerate_candidates();
        let subproblems = if cfg.decompose {
            decompose(candidates)
        } else {
            vec![Subproblem::whole(candidates)]
        };

        // Restricted copies feed the solvers; the pristine candidates stay
        // in the cells for future re-solves. The parallel driver returns
        // solutions in subproblem order and each cell's solve is
        // deterministic, so this path is observably identical to the
        // sequential one (and to a later incremental re-solve of the same
        // restricted cell).
        let solutions: Vec<SubSolution> = if cfg.parallel && subproblems.len() > 1 {
            // detlint::allow(determinism, reason = "PMC solver timeout deadline; deadlines only abort, never alter a completed plan")
            let deadline = cfg.timeout.map(|t| Instant::now() + t);
            let restricted: Vec<Subproblem> = subproblems
                .iter()
                .map(|sp| Subproblem {
                    universe: sp
                        .universe
                        .iter()
                        .copied()
                        .filter(|l| !offline.contains(l))
                        .collect(),
                    candidates: sp
                        .candidates
                        .iter()
                        .filter(|p| !p.links().iter().any(|l| offline.contains(l)))
                        .cloned()
                        .collect(),
                })
                .collect();
            construct_decomposed_parallel(restricted, cfg, deadline)?
        } else {
            let mut out = Vec::with_capacity(subproblems.len());
            for sp in &subproblems {
                // Membership tests only, so the full offline set stands in
                // for its intersection with the cell universe.
                out.push(resolve_subproblem(
                    &sp.universe,
                    &sp.candidates,
                    offline,
                    cfg,
                )?);
            }
            out
        };

        let mut cells = Vec::with_capacity(subproblems.len());
        for (sp, solution) in subproblems.into_iter().zip(solutions) {
            let excluded = cell_exclusions(&sp.universe, offline);
            let pristine = excluded.is_empty().then(|| solution.clone());
            cells.push(PlanCell {
                universe: sp.universe,
                excluded,
                source: CellSource::Materialized(sp.candidates),
                solution,
                pristine,
                range: PathIdRange::default(), // Assigned by the constructor.
            });
        }
        Ok(cells)
    }

    fn build_symmetric(
        topo: &SharedTopology,
        cfg: &PmcConfig,
        offline: &HashSet<LinkId>,
    ) -> Result<Vec<PlanCell>, PmcError> {
        let plan = topo.symmetry();
        let mut cells = Vec::new();
        for (bi, base) in plan.bases.into_iter().enumerate() {
            let BaseComponent {
                provider,
                replicas,
                replicate,
                replicate_link,
            } = base;
            let base_universe = provider.universe().to_vec();

            // Per-replica universes and exclusion sets.
            let mut metas = Vec::with_capacity(replicas as usize);
            let mut any_pristine = false;
            for r in 0..replicas {
                let mut universe: Vec<LinkId> = base_universe
                    .iter()
                    .map(|&l| replicate_link(l, r))
                    .collect();
                let to_base: HashMap<LinkId, LinkId> = universe
                    .iter()
                    .copied()
                    .zip(base_universe.iter().copied())
                    .collect();
                universe.sort_unstable();
                let excluded = cell_exclusions(&universe, offline);
                any_pristine |= excluded.is_empty();
                metas.push((universe, to_base, excluded));
            }

            // One pristine base solve, shared by every unaffected replica
            // (skipped entirely when all replicas carry exclusions).
            let pristine_base = if any_pristine {
                Some(construct_with_provider(provider, cfg)?)
            } else {
                None
            };

            for (r, (universe, to_base, excluded)) in metas.into_iter().enumerate() {
                let r = r as u32;
                let solution = if excluded.is_empty() {
                    let base_sol = pristine_base.as_ref().expect("pristine solved above");
                    replicate_solution(base_sol, r, &replicate)
                } else {
                    resolve_replica(topo, cfg, bi, r, &to_base, &excluded)?
                };
                let pristine = excluded.is_empty().then(|| solution.clone());
                cells.push(PlanCell {
                    universe,
                    excluded,
                    source: CellSource::Replica {
                        base: bi,
                        replica: r,
                        to_base,
                    },
                    solution,
                    pristine,
                    range: PathIdRange::default(), // Assigned by the constructor.
                });
            }
        }
        Ok(cells)
    }

    /// The size of the probe-link universe this plan covers.
    pub fn num_links(&self) -> usize {
        self.num_links
    }

    /// Number of independent cells (subproblems) in the plan.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// The offline links currently applied.
    pub fn offline(&self) -> &HashSet<LinkId> {
        &self.offline
    }

    /// The id range of every cell, in cell order. Ranges are disjoint;
    /// a cell that was re-based sits past every older range.
    pub fn cell_ranges(&self) -> Vec<PathIdRange> {
        self.cells.iter().map(|c| c.range).collect()
    }

    /// Indices of the cells whose universes intersect `links` — exactly
    /// the cells a delta over those links can touch.
    pub fn cells_touching(&self, links: &[LinkId]) -> Vec<usize> {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.intersects(links))
            .map(|(i, _)| i)
            .collect()
    }

    /// The headroom policy in force.
    pub fn headroom(&self) -> IdHeadroom {
        self.headroom
    }

    /// Patches the plan for a topology delta: `changed` are the links
    /// whose up/down state flipped, `offline` the complete offline set
    /// after the change. Only cells whose universes intersect the change
    /// are touched; a cell whose exclusions empty out restores its cached
    /// pristine solution without solving.
    ///
    /// The patch is atomic: every affected cell is re-solved first and
    /// the plan mutates only after all succeed, so an error (e.g.
    /// [`PmcError::Timeout`] under a configured budget) leaves the plan
    /// in its previous consistent state. `changed` is a hint — the plan
    /// additionally diffs `offline` against its own applied set, so a
    /// retry after a failed patch re-covers the links the failed call
    /// never committed.
    pub fn apply(
        &mut self,
        changed: &[LinkId],
        offline: &HashSet<LinkId>,
    ) -> Result<ReplanStats, PmcError> {
        // detlint::allow(determinism, reason = "replan_micros stopwatch; measurement only, never branches")
        let t0 = Instant::now();
        let mut stats = ReplanStats {
            cells_total: self.cells.len(),
            ..Default::default()
        };
        let offline: HashSet<LinkId> = offline
            .iter()
            .copied()
            .filter(|l| l.index() < self.num_links)
            .collect();
        // The caller's delta, plus anything the applied set disagrees on
        // (non-empty only after a previous apply() failed mid-flight).
        let mut all_changed: Vec<LinkId> = changed
            .iter()
            .copied()
            .chain(offline.symmetric_difference(&self.offline).copied())
            .collect();
        all_changed.sort_unstable();
        all_changed.dedup();

        // Phase 1: classify every affected cell, touching nothing.
        // Restores splice the cached pristine solution; the rest must be
        // re-solved from their candidate sources.
        let mut restores: Vec<(usize, Vec<LinkId>)> = Vec::new();
        let mut solves: Vec<(usize, Vec<LinkId>)> = Vec::new();
        for (ci, cell) in self.cells.iter().enumerate() {
            if !cell.intersects(&all_changed) {
                continue;
            }
            let new_excluded = cell_exclusions(&cell.universe, &offline);
            if new_excluded == cell.excluded {
                continue;
            }
            if new_excluded.is_empty() && cell.pristine.is_some() {
                restores.push((ci, new_excluded));
                stats.cells_restored += 1;
            } else {
                solves.push((ci, new_excluded));
                stats.cells_resolved += 1;
            }
        }

        // Phase 1b: re-solve. A multi-cell delta (e.g. a pod drain
        // touching every group) fans out across threads; each cell's
        // solve is deterministic, so the parallel patch is observably
        // identical to re-solving the cells one by one.
        let solutions: Vec<SubSolution> = if self.cfg.parallel && solves.len() > 1 {
            self.resolve_cells_parallel(&solves)?
        } else {
            let mut out = Vec::with_capacity(solves.len());
            for (ci, excluded) in &solves {
                out.push(self.resolve_cell(*ci, excluded)?);
            }
            out
        };
        let mut patches: Vec<(usize, Vec<LinkId>, Option<SubSolution>)> = restores
            .into_iter()
            .map(|(ci, ex)| (ci, ex, None))
            .collect();
        patches.extend(
            solves
                .into_iter()
                .zip(solutions)
                .map(|((ci, ex), sol)| (ci, ex, Some(sol))),
        );

        // Phase 2: commit. A cell whose new solution fits its range keeps
        // the range (its ids — and every other cell's — are unchanged);
        // an overflowing cell is re-based onto a fresh range past every
        // id ever allocated.
        self.offline = offline;
        for (ci, new_excluded, solution) in patches {
            let cell = &mut self.cells[ci];
            let solution = match solution {
                Some(s) => s,
                None => cell.pristine.clone().expect("checked in phase 1"),
            };
            if new_excluded.is_empty() && cell.pristine.is_none() {
                cell.pristine = Some(solution.clone());
            }
            cell.excluded = new_excluded;
            cell.solution = solution;
            if !cell.range.fits(cell.solution.paths.len()) {
                let capacity = self.headroom.capacity(cell.solution.paths.len());
                match self.next_base.checked_add(capacity) {
                    Some(end) => {
                        cell.range = PathIdRange::new(self.next_base, capacity);
                        self.next_base = end;
                        stats.cells_rebased += 1;
                    }
                    None => {
                        // The u32 id space is exhausted (only reachable
                        // after ~4 billion ids of churn): compact every
                        // range back to 0 — a one-off global re-base
                        // that re-dispatches the whole fabric instead of
                        // silently wrapping ids onto live low ranges.
                        self.compact_ranges();
                        stats.cells_rebased = self.cells.len();
                    }
                }
            }
        }
        stats.replan_micros = t0.elapsed().as_micros() as u64;
        Ok(stats)
    }

    /// Reassigns every cell a fresh range from id 0 in cell order — the
    /// id-space-exhaustion fallback. All retired-id guarantees reset:
    /// every pinglist re-dispatches on the next deployment.
    fn compact_ranges(&mut self) {
        self.next_base = 0;
        for cell in &mut self.cells {
            let capacity = self.headroom.capacity(cell.solution.paths.len());
            cell.range = PathIdRange::new(self.next_base, capacity);
            self.next_base = self
                .next_base
                .checked_add(capacity)
                .expect("live plan exceeds the u32 path-id space even when compacted");
        }
    }

    /// Test hook: fast-forwards the allocator to the top of the id
    /// space so the exhaustion fallback can be exercised without 4
    /// billion re-bases.
    #[cfg(test)]
    fn exhaust_id_space_for_test(&mut self) {
        self.next_base = u32::MAX - 1;
    }

    /// Re-solves one cell against an exclusion set (does not mutate the
    /// cell; the caller splices the result).
    ///
    /// Under [`PmcConfig::stable_patch`] the re-solve is *seeded* with the
    /// cell's current solution: surviving paths are pre-selected and the
    /// greedy repairs only what the delta broke, so the dispatched
    /// pinglist diff stays proportional to the delta instead of the cell
    /// size. Replica cells stabilize against the fresh replica solve's
    /// paths (pulling the seed back into base coordinates would need the
    /// inverse of the replicate map, which symmetry plans do not expose);
    /// when the cell heals completely and a pristine solution is cached,
    /// that cache stands in for the solve as the candidate pool.
    fn resolve_cell(&self, ci: usize, excluded: &[LinkId]) -> Result<SubSolution, PmcError> {
        let cell = &self.cells[ci];
        let excluded_set: HashSet<LinkId> = excluded.iter().copied().collect();
        match &cell.source {
            CellSource::Materialized(candidates) => {
                if self.cfg.stable_patch {
                    resolve_subproblem_seeded(
                        &cell.universe,
                        candidates,
                        &excluded_set,
                        &cell.solution.paths,
                        &self.cfg,
                    )
                    .map(|s| align_with_previous(&cell.solution.paths, s))
                } else {
                    resolve_subproblem(&cell.universe, candidates, &excluded_set, &self.cfg)
                }
            }
            CellSource::Replica {
                base,
                replica,
                to_base,
            } => {
                if self.cfg.stable_patch {
                    let pool = match (&cell.pristine, excluded.is_empty()) {
                        (Some(pristine), true) => pristine.paths.clone(),
                        _ => {
                            resolve_replica(
                                &self.topo, &self.cfg, *base, *replica, to_base, excluded,
                            )?
                            .paths
                        }
                    };
                    resolve_subproblem_seeded(
                        &cell.universe,
                        &pool,
                        &excluded_set,
                        &cell.solution.paths,
                        &self.cfg,
                    )
                    .map(|s| align_with_previous(&cell.solution.paths, s))
                } else {
                    resolve_replica(&self.topo, &self.cfg, *base, *replica, to_base, excluded)
                }
            }
        }
    }

    /// Re-solves a batch of cells concurrently, results in input order —
    /// every cell (materialized or replica) runs the identical
    /// [`ProbePlan::resolve_cell`] procedure, fanned out over the
    /// [`JobPool`] the PMC config implies (host parallelism unless
    /// [`PmcConfig::workers`] bounds it — the distributed controller's
    /// sharding knob). Because each cell's solve derives its own
    /// deadline from `cfg.timeout`, the parallel batch has exactly the
    /// per-cell budget semantics of the sequential fallback: only the
    /// schedule differs, never the result.
    fn resolve_cells_parallel(
        &self,
        solves: &[(usize, Vec<LinkId>)],
    ) -> Result<Vec<SubSolution>, PmcError> {
        JobPool::from_config(&self.cfg)
            .run_indexed(solves.len(), |i| {
                let (ci, excluded) = &solves[i];
                self.resolve_cell(*ci, excluded)
            })
            .into_iter()
            .collect()
    }

    /// Assembles the current per-cell solutions into a *segmented* probe
    /// matrix: each cell's paths are numbered densely within the cell's
    /// stable [`PathIdRange`], so the ids of a cell survive any re-solve
    /// of another cell bit-for-bit. Offline links appear in
    /// [`ProbeMatrix::uncoverable`] (no selected path crosses them), and
    /// the achieved targets are the conjunction over cells.
    pub fn matrix(&self) -> ProbeMatrix {
        let total: usize = self.cells.iter().map(|c| c.solution.paths.len()).sum();
        let mut paths = Vec::with_capacity(total);
        let mut targets_met = true;
        let mut coverage = u32::MAX;
        for cell in &self.cells {
            targets_met &= cell.solution.targets_met;
            coverage = coverage.min(cell.solution.coverage);
            debug_assert!(
                cell.range.fits(cell.solution.paths.len()),
                "cell solution exceeds its id range (missed re-base)"
            );
            for (i, p) in cell.solution.paths.iter().enumerate() {
                let mut p = p.clone();
                p.id = cell.range.id(i);
                paths.push(p);
            }
        }
        if coverage == u32::MAX {
            coverage = 0;
        }
        let matrix = ProbeMatrix::from_segmented(self.num_links, paths);
        let targets_met = targets_met && matrix.uncoverable.is_empty();
        let achieved = Achieved {
            coverage,
            identifiability: if targets_met { self.cfg.beta } else { 0 },
            targets_met,
        };
        matrix.with_achieved(achieved)
    }
}

impl core::fmt::Debug for ProbePlan {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ProbePlan")
            .field("topology", &self.topo.name())
            .field("num_links", &self.num_links)
            .field("cells", &self.cells.len())
            .field("offline", &self.offline.len())
            .finish()
    }
}

/// The sorted intersection of a cell universe with the offline set.
fn cell_exclusions(universe: &[LinkId], offline: &HashSet<LinkId>) -> Vec<LinkId> {
    universe
        .iter()
        .copied()
        .filter(|l| offline.contains(l))
        .collect()
}

/// Re-orders a seeded re-solve so every surviving path keeps its previous
/// in-cell index — and with it its dense-range `PathId`, its entry bytes
/// and its pinger assignment — so the dispatched diff touches only
/// genuinely changed paths. Repair paths fill the vacated slots in
/// ascending order and spares append past the old length; when the
/// solution shrank instead, tail paths move forward into the remaining
/// holes (the minimal id churn a dense range permits).
fn align_with_previous(old: &[ProbePath], mut new: SubSolution) -> SubSolution {
    let mut fresh: Vec<Option<ProbePath>> = new.paths.into_iter().map(Some).collect();
    let mut slots: Vec<Option<ProbePath>> = old
        .iter()
        .map(|o| {
            fresh
                .iter_mut()
                .find(|s| {
                    s.as_ref()
                        .is_some_and(|n| n.links() == o.links() && n.nodes() == o.nodes())
                })
                .and_then(Option::take)
        })
        .collect();
    let mut spares: VecDeque<ProbePath> = fresh.into_iter().flatten().collect();
    for slot in slots.iter_mut() {
        if slot.is_none() {
            if let Some(f) = spares.pop_front() {
                *slot = Some(f);
            }
        }
    }
    slots.extend(spares.into_iter().map(Some));
    let mut i = 0;
    while i < slots.len() {
        if slots[i].is_some() {
            i += 1;
            continue;
        }
        while matches!(slots.last(), Some(None)) {
            slots.pop();
        }
        if i + 1 >= slots.len() {
            slots.truncate(i);
            break;
        }
        let last = slots
            .pop()
            .expect("checked non-empty")
            .expect("trailing holes dropped");
        slots[i] = Some(last);
        i += 1;
    }
    new.paths = slots.into_iter().flatten().collect();
    new
}

/// Re-homes a base solution onto replica `r`.
fn replicate_solution(
    base: &SubSolution,
    r: u32,
    replicate: &dyn Fn(&ProbePath, u32) -> ProbePath,
) -> SubSolution {
    SubSolution {
        paths: base.paths.iter().map(|p| replicate(p, r)).collect(),
        targets_met: base.targets_met,
        coverage: base.coverage,
        cells: base.cells,
    }
}

/// Re-solves replica `replica` of symmetry base `base_idx` with
/// exclusions: pull the excluded links back into base coordinates, solve
/// a fresh excluded base provider, and replicate the restricted solution
/// out to the replica.
fn resolve_replica(
    topo: &SharedTopology,
    cfg: &PmcConfig,
    base_idx: usize,
    replica: u32,
    to_base: &HashMap<LinkId, LinkId>,
    excluded: &[LinkId],
) -> Result<SubSolution, PmcError> {
    let base = topo
        .symmetry()
        .bases
        .into_iter()
        .nth(base_idx)
        .expect("symmetry plan must be stable across calls");
    let excluded_base: HashSet<LinkId> = excluded
        .iter()
        .map(|l| *to_base.get(l).expect("excluded link must be in the cell"))
        .collect();
    let sol = construct_with_provider(ExcludingProvider::new(base.provider, excluded_base), cfg)?;
    Ok(replicate_solution(&sol, replica, &base.replicate))
}

#[cfg(test)]
mod tests {
    use super::*;
    use detector_topology::{DcnTopology, Fattree, TopologyEvent, TopologyView};
    use std::sync::Arc;

    fn shared(k: u32) -> SharedTopology {
        Arc::new(Fattree::new(k).unwrap())
    }

    /// Bit-exact equality, ids included — holds within one plan's
    /// lifetime (e.g. a drain/undrain round trip restores the identical
    /// segmented matrix).
    fn assert_matrices_equal(a: &ProbeMatrix, b: &ProbeMatrix) {
        assert_eq!(a.num_links, b.num_links);
        assert_eq!(a.achieved, b.achieved);
        assert_eq!(a.uncoverable, b.uncoverable);
        assert_eq!(a.paths.len(), b.paths.len());
        for (pa, pb) in a.paths.iter().zip(&b.paths) {
            assert_eq!(pa, pb);
        }
    }

    /// Content equality modulo id assignment — what incremental ==
    /// from-scratch guarantees: the same paths in the same row order. A
    /// fresh plan derives its ranges from the current solution sizes
    /// while a patched plan keeps its birth ranges (id *stability* is
    /// the point), so ids may differ even though every row carries the
    /// same links and nodes.
    fn assert_matrices_equivalent(a: &ProbeMatrix, b: &ProbeMatrix) {
        assert_eq!(a.num_links, b.num_links);
        assert_eq!(a.achieved, b.achieved);
        assert_eq!(a.uncoverable, b.uncoverable);
        assert_eq!(a.paths.len(), b.paths.len());
        for (i, (pa, pb)) in a.paths.iter().zip(&b.paths).enumerate() {
            assert_eq!(pa.links(), pb.links(), "row {i} links");
            assert_eq!(pa.nodes(), pb.nodes(), "row {i} nodes");
        }
    }

    #[test]
    fn pristine_plan_matches_controller_scale_matrix() {
        let topo = shared(4);
        let plan =
            ProbePlan::new(topo.clone(), &PmcConfig::identifiable(1), &HashSet::new()).unwrap();
        let m = plan.matrix();
        assert!(m.achieved.targets_met);
        assert!(m.uncoverable.is_empty());
        // The 4-ary Fattree decomposes into h = 2 components.
        assert_eq!(plan.num_cells(), 2);
    }

    #[test]
    fn patched_equals_from_scratch_materialized() {
        let topo = shared(4);
        let cfg = PmcConfig::identifiable(1);
        let ft = Fattree::new(4).unwrap();
        let dead = ft.ea_link(1, 0, 1);
        let offline: HashSet<LinkId> = [dead].into_iter().collect();

        let mut patched = ProbePlan::new(topo.clone(), &cfg, &HashSet::new()).unwrap();
        let stats = patched.apply(&[dead], &offline).unwrap();
        assert_eq!(stats.cells_resolved, 1);

        let scratch = ProbePlan::new(topo, &cfg, &offline).unwrap();
        assert_matrices_equivalent(&patched.matrix(), &scratch.matrix());
        assert!(patched.matrix().uncoverable.contains(&dead));
    }

    #[test]
    fn patched_equals_from_scratch_symmetric() {
        let topo = shared(6);
        let cfg = PmcConfig::identifiable(1);
        let ft = Fattree::new(6).unwrap();
        let dead = ft.ac_link(2, 1, 0);
        let offline: HashSet<LinkId> = [dead].into_iter().collect();

        // Limit 0 forces the symmetric path even on this small instance.
        let mut patched =
            ProbePlan::with_exhaustive_limit(topo.clone(), &cfg, &HashSet::new(), 0).unwrap();
        assert_eq!(patched.num_cells(), 3); // h = 3 groups.
        let stats = patched.apply(&[dead], &offline).unwrap();
        assert_eq!(stats.cells_resolved, 1);

        let scratch = ProbePlan::with_exhaustive_limit(topo, &cfg, &offline, 0).unwrap();
        assert_matrices_equivalent(&patched.matrix(), &scratch.matrix());
    }

    /// Counts matrix rows that changed between two segmented matrices,
    /// comparing by id: a row churns when its id vanished, appeared, or
    /// carries different links.
    fn rows_changed(before: &ProbeMatrix, after: &ProbeMatrix) -> usize {
        let index = |m: &ProbeMatrix| -> HashMap<_, Vec<LinkId>> {
            m.paths.iter().map(|p| (p.id, p.links().to_vec())).collect()
        };
        let (b, a) = (index(before), index(after));
        let mut changed = 0;
        for (id, links) in &b {
            if a.get(id) != Some(links) {
                changed += 1;
            }
        }
        changed + a.keys().filter(|id| !b.contains_key(id)).count()
    }

    #[test]
    fn stable_patch_repairs_instead_of_reshuffling() {
        let topo = shared(4);
        let cfg = PmcConfig::identifiable(1).with_stable_patch();
        let ft = Fattree::new(4).unwrap();
        let dead = ft.ea_link(1, 0, 1);
        let offline: HashSet<LinkId> = [dead].into_iter().collect();

        let mut plan = ProbePlan::new(topo.clone(), &cfg, &HashSet::new()).unwrap();
        let before = plan.matrix();
        let through = before.paths_through(dead).count();
        assert!(through > 0);
        plan.apply(&[dead], &offline).unwrap();
        let after = plan.matrix();

        // Same targets as the canonical (unseeded) re-plan…
        let scratch = ProbePlan::new(topo, &PmcConfig::identifiable(1), &offline).unwrap();
        assert_eq!(after.achieved, scratch.matrix().achieved);
        assert!(after.uncoverable.contains(&dead));
        assert!(after.paths.iter().all(|p| !p.covers(dead)));
        // …but churn bounded by the delta: only the paths through the
        // dead link (replaced in place by repairs) may move, give or
        // take a couple of redundancy drops — never the whole cell.
        let churned = rows_changed(&before, &after);
        assert!(
            churned <= 2 * through + 2,
            "stable patch churned {churned} rows for {through} dead paths"
        );
    }

    #[test]
    fn stable_patch_repairs_replica_cells_too() {
        let topo = shared(6);
        let cfg = PmcConfig::identifiable(1).with_stable_patch();
        let ft = Fattree::new(6).unwrap();
        let dead = ft.ac_link(2, 1, 0);
        let offline: HashSet<LinkId> = [dead].into_iter().collect();

        // Limit 0 forces the symmetric (Replica-cell) path.
        let mut plan =
            ProbePlan::with_exhaustive_limit(topo.clone(), &cfg, &HashSet::new(), 0).unwrap();
        let before = plan.matrix();
        let through = before.paths_through(dead).count();
        assert!(through > 0);
        let stats = plan.apply(&[dead], &offline).unwrap();
        assert_eq!(stats.cells_resolved, 1);
        let after = plan.matrix();

        let scratch =
            ProbePlan::with_exhaustive_limit(topo, &PmcConfig::identifiable(1), &offline, 0)
                .unwrap();
        assert_eq!(after.achieved, scratch.matrix().achieved);
        assert!(after.paths.iter().all(|p| !p.covers(dead)));
        let churned = rows_changed(&before, &after);
        assert!(
            churned <= 2 * through + 2,
            "stable patch churned {churned} rows for {through} dead paths"
        );
    }

    #[test]
    fn stable_patch_round_trip_restores_the_pristine_matrix() {
        let topo = shared(4);
        let cfg = PmcConfig::identifiable(1).with_stable_patch();
        let ft = Fattree::new(4).unwrap();
        let dead = ft.ea_link(0, 0, 0);
        let offline: HashSet<LinkId> = [dead].into_iter().collect();

        let mut plan = ProbePlan::new(topo, &cfg, &HashSet::new()).unwrap();
        let before = plan.matrix();
        plan.apply(&[dead], &offline).unwrap();
        let stats = plan.apply(&[dead], &HashSet::new()).unwrap();
        // The heal still splices the cached pristine solution verbatim —
        // under stable_patch that reverse diff is as small as the
        // forward one was.
        assert_eq!(stats.cells_restored, 1);
        assert_matrices_equal(&before, &plan.matrix());
    }

    #[test]
    fn link_up_restores_the_pristine_solution_without_solving() {
        let topo = shared(4);
        let cfg = PmcConfig::identifiable(1);
        let ft = Fattree::new(4).unwrap();
        let dead = ft.ea_link(0, 0, 0);
        let offline: HashSet<LinkId> = [dead].into_iter().collect();

        let mut plan = ProbePlan::new(topo, &cfg, &HashSet::new()).unwrap();
        let before = plan.matrix();
        plan.apply(&[dead], &offline).unwrap();
        let stats = plan.apply(&[dead], &HashSet::new()).unwrap();
        assert_eq!(stats.cells_restored, 1);
        assert_eq!(stats.cells_resolved, 0);
        assert_matrices_equal(&plan.matrix(), &before);
    }

    #[test]
    fn unrelated_cells_are_untouched() {
        let topo = shared(4);
        let cfg = PmcConfig::identifiable(1);
        let ft = Fattree::new(4).unwrap();
        // Group-0 and group-1 links live in different cells.
        let g0 = ft.ea_link(0, 0, 0);
        let g1 = ft.ea_link(0, 0, 1);
        let mut plan = ProbePlan::new(topo, &cfg, &HashSet::new()).unwrap();
        let offline: HashSet<LinkId> = [g0].into_iter().collect();
        let s = plan.apply(&[g0], &offline).unwrap();
        assert_eq!(s.cells_resolved + s.cells_restored, 1);
        // Paths through the other group survive verbatim.
        assert!(plan.matrix().paths.iter().any(|p| p.covers(g1)));
    }

    #[test]
    fn strawman_config_keeps_a_single_cell() {
        // `decompose == false` (PmcConfig::strawman) must solve the whole
        // problem monolithically, like `construct`'s strawman branch —
        // and the delta path still works on the single cell.
        let topo = shared(4);
        let cfg = PmcConfig::identifiable(1).strawman();
        let mut plan = ProbePlan::new(topo.clone(), &cfg, &HashSet::new()).unwrap();
        assert_eq!(plan.num_cells(), 1);
        let ft = Fattree::new(4).unwrap();
        let dead = ft.ea_link(0, 0, 0);
        let offline: HashSet<LinkId> = [dead].into_iter().collect();
        let stats = plan.apply(&[dead], &offline).unwrap();
        assert_eq!(stats.cells_resolved, 1);
        let scratch = ProbePlan::new(topo, &cfg, &offline).unwrap();
        assert_matrices_equivalent(&plan.matrix(), &scratch.matrix());
    }

    #[test]
    fn apply_heals_from_a_stale_changed_hint() {
        // The `changed` parameter is only a hint: the plan also diffs the
        // offline set against its own applied state, so a caller whose
        // previous patch failed mid-flight (or who passes no delta at
        // all) still converges to the correct plan.
        let topo = shared(4);
        let cfg = PmcConfig::identifiable(1);
        let ft = Fattree::new(4).unwrap();
        let dead = ft.ea_link(1, 1, 0);
        let offline: HashSet<LinkId> = [dead].into_iter().collect();

        let mut plan = ProbePlan::new(topo.clone(), &cfg, &HashSet::new()).unwrap();
        let stats = plan.apply(&[], &offline).unwrap();
        assert_eq!(stats.cells_resolved, 1);
        let scratch = ProbePlan::new(topo, &cfg, &offline).unwrap();
        assert_matrices_equivalent(&plan.matrix(), &scratch.matrix());
    }

    #[test]
    fn multi_cell_patch_rides_the_parallel_path_materialized() {
        // A pod drain touches every group cell at once; the parallel
        // batch re-solve must agree with a from-scratch build exactly.
        let ft = Arc::new(Fattree::new(4).unwrap());
        let mut view = TopologyView::new(ft.clone() as SharedTopology);
        let cfg = PmcConfig::identifiable(1);
        assert!(
            cfg.parallel,
            "default config must exercise the parallel patch"
        );
        let mut plan = ProbePlan::new(view.shared(), &cfg, view.offline_links()).unwrap();
        let before = plan.matrix();

        let d = view.apply(&TopologyEvent::PodDrained { pod: 0 });
        let stats = plan
            .apply(&d.changed_links(), view.offline_links())
            .unwrap();
        assert_eq!(
            stats.cells_resolved,
            plan.num_cells(),
            "pod drain must touch every cell"
        );
        let scratch = ProbePlan::new(view.shared(), &cfg, view.offline_links()).unwrap();
        assert_matrices_equivalent(&plan.matrix(), &scratch.matrix());

        // And the recovery restores every cell from cache, in one patch.
        let d = view.apply(&TopologyEvent::PodAdded { pod: 0 });
        let stats = plan
            .apply(&d.changed_links(), view.offline_links())
            .unwrap();
        assert_eq!(stats.cells_restored, plan.num_cells());
        assert_matrices_equal(&plan.matrix(), &before);
    }

    #[test]
    fn multi_cell_patch_rides_the_parallel_path_symmetric() {
        // Same drill with materialization forced off: every replica cell
        // re-solves through its provider, concurrently.
        let ft = Arc::new(Fattree::new(6).unwrap());
        let mut view = TopologyView::new(ft.clone() as SharedTopology);
        let cfg = PmcConfig::identifiable(1);
        let mut plan =
            ProbePlan::with_exhaustive_limit(view.shared(), &cfg, view.offline_links(), 0).unwrap();

        let d = view.apply(&TopologyEvent::PodDrained { pod: 1 });
        let stats = plan
            .apply(&d.changed_links(), view.offline_links())
            .unwrap();
        assert!(
            stats.cells_resolved > 1,
            "pod drain must re-solve several replica cells, got {stats:?}"
        );
        let scratch =
            ProbePlan::with_exhaustive_limit(view.shared(), &cfg, view.offline_links(), 0).unwrap();
        assert_matrices_equivalent(&plan.matrix(), &scratch.matrix());
    }

    #[test]
    fn single_cell_delta_keeps_every_other_cells_ids() {
        // The dispatch-stability tentpole at plan level: a delta inside
        // one cell leaves the ids *and* contents of every other cell's
        // paths bit-identical, because each cell numbers its paths
        // inside its own stable range.
        let topo = shared(4);
        let cfg = PmcConfig::identifiable(1);
        let ft = Fattree::new(4).unwrap();
        let dead = ft.ea_link(0, 0, 0);
        let mut plan = ProbePlan::new(topo, &cfg, &HashSet::new()).unwrap();
        let ranges = plan.cell_ranges();
        assert_eq!(ranges.len(), 2);
        // Ranges are disjoint and carry headroom.
        assert!(ranges[0].end() <= ranges[1].base);
        let before = plan.matrix();

        let touched = plan.cells_touching(&[dead]);
        assert_eq!(touched, vec![0], "group-0 link lives in cell 0");
        let offline: HashSet<LinkId> = [dead].into_iter().collect();
        plan.apply(&[dead], &offline).unwrap();
        let after = plan.matrix();

        // Every path of the untouched cell survives with the same id,
        // links and nodes.
        assert_eq!(plan.cell_ranges(), ranges, "no re-base expected");
        let untouched = ranges[1];
        let before_ids: Vec<_> = before
            .paths
            .iter()
            .filter(|p| untouched.contains(p.id))
            .collect();
        assert!(!before_ids.is_empty());
        for p in before_ids {
            let q = after.path(p.id).expect("untouched path must survive");
            assert_eq!(p, q, "untouched path changed across the delta");
        }
        // The touched cell changed within its own range only.
        for p in &after.paths {
            assert!(ranges.iter().any(|r| r.contains(p.id)));
        }
    }

    #[test]
    fn overflow_rebases_only_the_touched_cell() {
        // Born-degraded plan with zero headroom: restoring the link
        // grows the cell past its capacity, forcing a re-base — the
        // touched cell moves to a fresh range past every existing id
        // while the other cell's ids stay put.
        let topo = shared(4);
        let cfg = PmcConfig::identifiable(1);
        let ft = Fattree::new(4).unwrap();
        let dead = ft.ea_link(0, 0, 0);
        let offline: HashSet<LinkId> = [dead].into_iter().collect();
        let mut plan = ProbePlan::with_options(
            topo.clone(),
            &cfg,
            &offline,
            EXHAUSTIVE_LIMIT,
            IdHeadroom::NONE,
        )
        .unwrap();
        let ranges = plan.cell_ranges();
        let before = plan.matrix();
        let id_ceiling = ranges.iter().map(|r| r.end()).max().unwrap();

        let stats = plan.apply(&[dead], &HashSet::new()).unwrap();
        assert_eq!(stats.cells_rebased, 1, "restore must overflow: {stats:?}");
        let after_ranges = plan.cell_ranges();
        // The untouched cell keeps its exact range; the touched cell's
        // fresh range starts past every previously allocated id.
        assert_eq!(after_ranges[1], ranges[1]);
        assert!(after_ranges[0].base >= id_ceiling);
        let after = plan.matrix();
        // Untouched paths are bit-identical; re-based paths are dense
        // within the fresh range.
        for p in before.paths.iter().filter(|p| ranges[1].contains(p.id)) {
            assert_eq!(after.path(p.id), Some(p));
        }
        let rebased: Vec<_> = after
            .paths
            .iter()
            .filter(|p| after_ranges[0].contains(p.id))
            .collect();
        assert!(!rebased.is_empty());
        for (i, p) in rebased.iter().enumerate() {
            assert_eq!(p.id, after_ranges[0].id(i), "ids dense within range");
        }
        // Retired ids resolve to nothing — never to another cell's path.
        for p in before.paths.iter().filter(|p| ranges[0].contains(p.id)) {
            assert!(after.path(p.id).is_none());
        }
        // And the re-based plan still matches a from-scratch build,
        // content-wise.
        let scratch = ProbePlan::new(topo, &cfg, &HashSet::new()).unwrap();
        assert_matrices_equivalent(&after, &scratch.matrix());
    }

    #[test]
    fn id_space_exhaustion_compacts_instead_of_wrapping() {
        // When the next re-base would overflow u32, the plan compacts
        // every range back to 0 instead of silently wrapping fresh ids
        // onto live low-numbered ranges.
        let topo = shared(4);
        let cfg = PmcConfig::identifiable(1);
        let ft = Fattree::new(4).unwrap();
        let dead = ft.ea_link(0, 0, 0);
        let offline: HashSet<LinkId> = [dead].into_iter().collect();
        let mut plan = ProbePlan::with_options(
            topo.clone(),
            &cfg,
            &offline,
            EXHAUSTIVE_LIMIT,
            IdHeadroom::NONE,
        )
        .unwrap();
        plan.exhaust_id_space_for_test();

        // The restore overflows the zero-headroom range; allocating a
        // fresh range at the top of the id space is impossible, so the
        // whole plan compacts.
        let stats = plan.apply(&[dead], &HashSet::new()).unwrap();
        assert_eq!(stats.cells_rebased, plan.num_cells());
        let ranges = plan.cell_ranges();
        assert_eq!(ranges[0].base, 0, "compaction restarts at id 0");
        for w in ranges.windows(2) {
            assert!(w[0].end() <= w[1].base, "compacted ranges overlap");
        }
        // Ids are well-formed and the plan still matches from-scratch.
        let after = plan.matrix();
        for p in &after.paths {
            assert!(ranges.iter().any(|r| r.contains(p.id)));
        }
        let scratch = ProbePlan::new(topo, &cfg, &HashSet::new()).unwrap();
        assert_matrices_equivalent(&after, &scratch.matrix());
    }

    #[test]
    fn default_headroom_absorbs_restore_growth() {
        // The same born-degraded restore as above, under the default
        // policy: the growth fits inside the headroom, so nothing is
        // re-based and nothing outside the touched cell re-dispatches.
        let topo = shared(4);
        let cfg = PmcConfig::identifiable(1);
        let ft = Fattree::new(4).unwrap();
        let dead = ft.ea_link(0, 0, 0);
        let offline: HashSet<LinkId> = [dead].into_iter().collect();
        let mut plan = ProbePlan::new(topo, &cfg, &offline).unwrap();
        let ranges = plan.cell_ranges();
        let stats = plan.apply(&[dead], &HashSet::new()).unwrap();
        assert_eq!(stats.cells_rebased, 0, "{stats:?}");
        assert_eq!(plan.cell_ranges(), ranges);
    }

    #[test]
    fn view_deltas_drive_the_plan() {
        // The intended wiring: TopologyView produces deltas, the plan
        // consumes them; a drain + undrain round-trips to the pristine
        // matrix.
        let ft = Arc::new(Fattree::new(4).unwrap());
        let mut view = TopologyView::new(ft.clone() as SharedTopology);
        let cfg = PmcConfig::identifiable(1);
        let mut plan = ProbePlan::new(view.shared(), &cfg, view.offline_links()).unwrap();
        let before = plan.matrix();

        let agg = ft.agg(0, 0);
        let d = view.apply(&TopologyEvent::SwitchDrain { switch: agg });
        plan.apply(&d.changed_links(), view.offline_links())
            .unwrap();
        let drained = plan.matrix();
        for p in &drained.paths {
            for l in p.links() {
                let lk = ft.graph().link(*l);
                assert!(lk.a != agg && lk.b != agg, "path crosses drained switch");
            }
        }

        let d = view.apply(&TopologyEvent::SwitchUndrain { switch: agg });
        plan.apply(&d.changed_links(), view.offline_links())
            .unwrap();
        assert_matrices_equal(&plan.matrix(), &before);
    }
}
