//! The diagnoser: report aggregation and PLL every window (§3.1, §6.1).

use detector_core::pll::{
    classify_loss, localize, ClassifyConfig, Diagnosis, FlowSample, LossClassification, PllConfig,
};
use detector_core::pmc::ProbeMatrix;
use detector_core::types::{LinkId, PathObservation};

use crate::report::{PingerReport, ReportStore};
use crate::watchdog::Watchdog;

/// One diagnosis produced at the end of a window.
#[derive(Clone, Debug)]
pub struct DiagnosisEvent {
    /// The window the diagnosis covers.
    pub window: u64,
    /// Number of per-path observations aggregated.
    pub num_observations: usize,
    /// The PLL output.
    pub diagnosis: Diagnosis,
}

/// The diagnoser service.
pub struct Diagnoser {
    matrix: ProbeMatrix,
    pll: PllConfig,
    store: ReportStore,
}

impl Diagnoser {
    /// A diagnoser for the given probe matrix.
    pub fn new(matrix: ProbeMatrix, pll: PllConfig) -> Self {
        Self {
            matrix,
            pll,
            store: ReportStore::new(),
        }
    }

    /// The probe matrix in force.
    pub fn matrix(&self) -> &ProbeMatrix {
        &self.matrix
    }

    /// Replaces the probe matrix (new controller cycle).
    pub fn set_matrix(&mut self, matrix: ProbeMatrix) {
        self.matrix = matrix;
    }

    /// Ingests a pinger report (the HTTP POST of §6.1).
    pub fn ingest(&self, report: PingerReport) {
        self.store.ingest(report);
    }

    /// Aggregated observations of a window, excluding watchdog-flagged
    /// pingers.
    pub fn observations(&self, window: u64, watchdog: &Watchdog) -> Vec<PathObservation> {
        self.store
            .window_observations(window, &|p| !watchdog.is_healthy(p))
    }

    /// Runs PLL over a window's observations.
    pub fn diagnose(&self, window: u64, watchdog: &Watchdog) -> DiagnosisEvent {
        let obs = self.observations(window, watchdog);
        let diagnosis = localize(&self.matrix, &obs, &self.pll);
        DiagnosisEvent {
            window,
            num_observations: obs.len(),
            diagnosis,
        }
    }

    /// Prunes stored reports older than `keep_from`.
    pub fn prune_before(&self, keep_from: u64) {
        self.store.prune_before(keep_from);
    }

    /// Classifies the loss pattern behind a suspect link (§7): aggregates
    /// the per-flow counters of the window's reports over the paths
    /// through the link and looks at the per-flow loss profile. Each
    /// (path, flow) pair is one sample — a blackhole drops a flow on one
    /// path deterministically, so bimodality shows at that granularity.
    pub fn classify_suspect(
        &self,
        window: u64,
        link: LinkId,
        watchdog: &Watchdog,
    ) -> Option<LossClassification> {
        let through: std::collections::HashSet<_> =
            self.matrix.paths_through(link).map(|p| p.id).collect();
        let samples = self
            .store
            .flow_samples(window, &|p| !watchdog.is_healthy(p), &|pid| {
                through.contains(&pid)
            });
        let samples: Vec<FlowSample> = samples
            .into_iter()
            .map(|((pinger, pid, flow), (sent, lost))| {
                let id = ((pinger.0 as u64) << 48) ^ ((pid.0 as u64) << 24) ^ flow;
                FlowSample::new(id, sent, lost)
            })
            .collect();
        classify_loss(&samples, &ClassifyConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::PathCounters;
    use detector_core::types::{LinkId, NodeId, PathId, ProbePath};

    fn matrix() -> ProbeMatrix {
        ProbeMatrix::from_paths(
            2,
            vec![
                ProbePath::from_links(0, vec![LinkId(0), LinkId(1)]),
                ProbePath::from_links(1, vec![LinkId(0)]),
                ProbePath::from_links(2, vec![LinkId(1)]),
            ],
        )
    }

    fn report(pinger: u32, window: u64, rows: &[(u32, u64, u64)]) -> PingerReport {
        let mut r = PingerReport {
            pinger: NodeId(pinger),
            window,
            ..Default::default()
        };
        for &(p, sent, lost) in rows {
            r.paths.insert(
                PathId(p),
                PathCounters {
                    sent,
                    lost,
                    ..Default::default()
                },
            );
        }
        r
    }

    #[test]
    fn diagnoses_from_aggregated_reports() {
        let d = Diagnoser::new(matrix(), PllConfig::default());
        // Link 0 bad: paths 0 and 1 lossy from two pingers.
        d.ingest(report(1, 0, &[(0, 50, 25), (1, 50, 25), (2, 50, 0)]));
        d.ingest(report(2, 0, &[(0, 50, 25), (1, 50, 25), (2, 50, 0)]));
        let ev = d.diagnose(0, &Watchdog::new());
        assert_eq!(ev.num_observations, 3);
        assert_eq!(ev.diagnosis.suspect_links(), vec![LinkId(0)]);
    }

    #[test]
    fn flagged_pingers_are_excluded() {
        let d = Diagnoser::new(matrix(), PllConfig::default());
        // Pinger 9 is sick and reports everything lost.
        d.ingest(report(1, 0, &[(0, 50, 0), (1, 50, 0), (2, 50, 0)]));
        d.ingest(report(9, 0, &[(0, 50, 50), (1, 50, 50), (2, 50, 50)]));
        let mut w = Watchdog::new();
        w.mark_unhealthy(NodeId(9));
        let ev = d.diagnose(0, &w);
        assert!(ev.diagnosis.is_clean());
    }

    #[test]
    fn empty_window_is_clean() {
        let d = Diagnoser::new(matrix(), PllConfig::default());
        let ev = d.diagnose(3, &Watchdog::new());
        assert_eq!(ev.num_observations, 0);
        assert!(ev.diagnosis.is_clean());
    }
}
