//! The diagnoser: streaming report aggregation and PLL every window
//! (§3.1, §6.1).
//!
//! Reports feed two stores as they arrive:
//!
//! * the sharded [`IngestPlane`] aggregates per-path `(sent, lost)`
//!   counters lock-free — at diagnosis time the window is *sealed* into
//!   a frozen, sorted snapshot, so PLL's input exists without any
//!   per-window `Vec<PingerReport>` re-aggregation;
//! * the [`ReportStore`] keeps the raw reports for the consumers that
//!   need per-pinger or per-flow attribution (loss classification,
//!   watchdog exclusions applied after ingestion).
//!
//! Diagnosis runs over the sealed snapshot, pre-filtered to the paths
//! that can influence the verdict (the top-K heavy-hitter pre-filter) —
//! or, with [`PllConfig::incremental`], through the cached-skeleton
//! incremental localizer. Both are exactly equivalent to full PLL over
//! the unfiltered window.

use detector_core::pll::{
    classify_loss, localize, lossy_components, ClassifyConfig, ComponentJob, ComponentPlan,
    ComponentPll, ComponentVerdict, Diagnosis, FlowSample, IncrementalPll, LossClassification,
    PllConfig,
};
use detector_core::pmc::{JobPool, ProbeMatrix};
use detector_core::types::{LinkId, PathObservation};
use detector_ingest::{prefilter, IngestPlane};
use serde::{Deserialize, Serialize};

use crate::report::{PingerReport, ReportStore};
use crate::watchdog::Watchdog;

/// Configuration of the diagnosis stage itself (as opposed to the PLL
/// algorithm it runs, [`PllConfig`]).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DiagConfig {
    /// Worker threads for component-parallel PLL. `1` (the default)
    /// localizes sequentially; `> 1` partitions each window's lossy
    /// observations into connected components of the path/link incidence
    /// and solves them concurrently on a scoped pool, merging suspects
    /// back into the exact sequential order ([`ComponentPll`]). Results
    /// and the event stream are bit-identical either way — the knob
    /// trades threads for multi-failure diagnosis latency.
    pub parallel_components: usize,
}

impl Default for DiagConfig {
    fn default() -> Self {
        Self {
            parallel_components: 1,
        }
    }
}

impl DiagConfig {
    /// Overrides the component-parallel worker count.
    pub fn with_parallel_components(mut self, workers: usize) -> Self {
        self.parallel_components = workers.max(1);
        self
    }
}

/// One diagnosis produced at the end of a window.
#[derive(Clone, Debug)]
pub struct DiagnosisEvent {
    /// The window the diagnosis covers.
    pub window: u64,
    /// Number of per-path observations aggregated.
    pub num_observations: usize,
    /// The PLL output.
    pub diagnosis: Diagnosis,
    /// Reports folded into the window (exclusions subtracted).
    pub reports: u64,
    /// Lossy paths confirmed through the unsaturated top-K tracker
    /// (zero on saturation fallback) — see
    /// [`RuntimeEvent::IngestStats`](crate::RuntimeEvent::IngestStats).
    pub topk_hits: u64,
    /// Shard key-claim CAS retries while the window accumulated.
    pub shard_contention: u64,
    /// Retractions the ingest plane could not absorb (see
    /// [`RuntimeEvent::IngestStats`](crate::RuntimeEvent::IngestStats)).
    pub retract_mismatch: u64,
    /// Observed paths with losses above the noise filters — computed on
    /// the post-exclusion window, so identical across drivers.
    pub lossy_paths: u64,
    /// Connected components of the lossy path/link incidence: the
    /// fan-out width component-parallel PLL would use this window.
    pub components: u64,
}

/// The in-flight state of a window whose diagnosis fanned out into
/// [`ComponentJob`]s: everything of the eventual [`DiagnosisEvent`]
/// except the verdict itself. Opaque; hand it back to
/// [`Diagnoser::diagnose_complete`] with the jobs' verdicts.
#[derive(Clone, Debug)]
pub struct PendingDiagnosis {
    window: u64,
    num_observations: usize,
    reports: u64,
    topk_hits: u64,
    shard_contention: u64,
    retract_mismatch: u64,
    lossy_paths: u64,
    components: u64,
}

impl PendingDiagnosis {
    fn finish(self, diagnosis: Diagnosis) -> DiagnosisEvent {
        DiagnosisEvent {
            window: self.window,
            num_observations: self.num_observations,
            diagnosis,
            reports: self.reports,
            topk_hits: self.topk_hits,
            shard_contention: self.shard_contention,
            retract_mismatch: self.retract_mismatch,
            lossy_paths: self.lossy_paths,
            components: self.components,
        }
    }
}

/// What [`Diagnoser::diagnose_prepare`] decided about the window.
#[derive(Debug)]
pub enum DiagStep {
    /// The window's diagnosis is final — no fan-out happened.
    Done(DiagnosisEvent),
    /// Component-parallel fan-out: execute every job (any threads, any
    /// order) and pass the verdicts to
    /// [`Diagnoser::diagnose_complete`] with the pending state.
    Fanout(PendingDiagnosis, Vec<ComponentJob>),
}

/// The diagnoser service.
pub struct Diagnoser {
    matrix: ProbeMatrix,
    pll: PllConfig,
    diag: DiagConfig,
    store: ReportStore,
    plane: IngestPlane,
    incremental: IncrementalPll,
    parallel: ComponentPll,
}

impl Diagnoser {
    /// A diagnoser for the given probe matrix.
    pub fn new(matrix: ProbeMatrix, pll: PllConfig) -> Self {
        let plane = IngestPlane::for_paths(matrix.num_paths());
        Self {
            matrix,
            pll,
            diag: DiagConfig::default(),
            store: ReportStore::new(),
            plane,
            incremental: IncrementalPll::new(),
            parallel: ComponentPll::new(),
        }
    }

    /// Sets the diagnosis-stage configuration (builder style).
    pub fn with_diag(mut self, diag: DiagConfig) -> Self {
        self.diag = diag;
        self
    }

    /// The probe matrix in force.
    pub fn matrix(&self) -> &ProbeMatrix {
        &self.matrix
    }

    /// Replaces the probe matrix (new controller cycle or plan epoch).
    /// Invalidates the incremental-PLL skeleton — path ids may be reused
    /// with different link sets — and re-sizes the ingest plane when the
    /// plan outgrew it. Callers install matrices between windows, after
    /// the previous window was sealed, so no folded counters are in
    /// flight here.
    pub fn set_matrix(&mut self, matrix: ProbeMatrix) {
        let cfg = self.plane.config();
        if 2 * matrix.num_paths() > cfg.shards * cfg.slots_per_shard {
            self.plane = IngestPlane::for_paths(matrix.num_paths());
        }
        self.incremental.invalidate();
        self.parallel.invalidate();
        self.matrix = matrix;
    }

    /// Ingests a pinger report (the HTTP POST of §6.1): folds its path
    /// counters into the ingest plane and files the raw report.
    pub fn ingest(&self, report: PingerReport) {
        self.fold(&report);
        self.ingest_stored(report);
    }

    /// Folds a report's path counters into the ingest plane only — the
    /// distributed controller feeds `Report` frames to the shards the
    /// moment they arrive, before the window's collection completes.
    pub fn fold(&self, report: &PingerReport) {
        self.plane.fold(
            report.window,
            report.paths.iter().map(|(p, c)| (*p, c.sent, c.lost)),
        );
    }

    /// Undoes a previous [`fold`](Diagnoser::fold): a crashed agent
    /// forfeits everything it sent in the unfinished window.
    pub fn retract(&self, report: &PingerReport) {
        self.plane.retract(
            report.window,
            report.paths.iter().map(|(p, c)| (*p, c.sent, c.lost)),
        );
    }

    /// Files a raw report without folding it (the counterpart of
    /// [`fold`](Diagnoser::fold) for reports already in the plane).
    pub fn ingest_stored(&self, report: PingerReport) {
        self.store.ingest(report);
    }

    /// Aggregated observations of a window from the raw report store,
    /// excluding watchdog-flagged pingers. The diagnosis path reads the
    /// sealed ingest plane instead; this remains the attribution-aware
    /// view (and the oracle the plane is tested against).
    pub fn observations(&self, window: u64, watchdog: &Watchdog) -> Vec<PathObservation> {
        self.store
            .window_observations(window, &|p| !watchdog.is_healthy(p))
    }

    /// Seals the window's ingest-plane snapshot and runs PLL over it.
    ///
    /// Watchdog exclusions are applied by subtracting the excluded
    /// pingers' stored contributions from the snapshot (the plane folds
    /// reports as they arrive, before health verdicts settle). The
    /// result is exactly `localize` over
    /// [`observations`](Diagnoser::observations) — including under
    /// component-parallel fan-out (`DiagConfig::parallel_components > 1`),
    /// which runs the per-component jobs on an internal [`JobPool`].
    pub fn diagnose(&mut self, window: u64, watchdog: &Watchdog) -> DiagnosisEvent {
        match self.diagnose_prepare(window, watchdog) {
            DiagStep::Done(ev) => ev,
            DiagStep::Fanout(pending, jobs) => {
                let verdicts =
                    JobPool::clamped(self.diag.parallel_components).run_indexed(jobs.len(), |i| {
                        jobs.get(i)
                            .map(ComponentJob::run)
                            .unwrap_or_else(ComponentVerdict::empty)
                    });
                self.diagnose_complete(pending, verdicts)
            }
        }
    }

    /// Phase 1 of a window's diagnosis: seals the snapshot, applies
    /// exclusions, and either finishes outright ([`DiagStep::Done`] — the
    /// sequential localizer branches, a cached verdict, or an all-healthy
    /// window) or hands back the window's per-component PLL jobs for the
    /// caller to execute on threads of its choosing (the pipelined
    /// scheduler ships them to its probe workers). Every job's verdict
    /// must then go to [`diagnose_complete`](Diagnoser::diagnose_complete).
    pub fn diagnose_prepare(&mut self, window: u64, watchdog: &Watchdog) -> DiagStep {
        let sealed = self.plane.seal(window);
        let mut obs = sealed.observations;
        let mut reports = sealed.reports;
        let (excluded, excluded_reports) = self
            .store
            .excluded_path_totals(window, &|p| !watchdog.is_healthy(p));
        if excluded_reports > 0 {
            reports = reports.saturating_sub(excluded_reports);
            obs.retain_mut(|o| {
                let Some(&(sent, lost)) = excluded.get(&o.path) else {
                    return true;
                };
                // Real reports never carry lost > sent, so the sealed
                // counters are un-clamped sums and subtract exactly.
                o.sent -= sent.min(o.sent);
                o.lost -= lost.min(o.lost);
                o.sent > 0 || o.lost > 0
            });
        }

        let num_observations = obs.len();
        // The shape of the window's diagnosis work, for `DiagStats`: a
        // pure function of the post-exclusion observations, so every
        // driver reports the same numbers regardless of which localizer
        // branch runs below.
        let (lossy_paths, components) = lossy_components(&self.matrix, &obs, &self.pll);
        let k = self.plane.config().topk;
        let workers = self.diag.parallel_components;
        let pending = PendingDiagnosis {
            window,
            num_observations,
            reports,
            topk_hits: 0,
            shard_contention: sealed.shard_contention,
            retract_mismatch: sealed.retract_mismatch,
            lossy_paths,
            components,
        };
        if self.pll.incremental {
            // The incremental localizers key their skeleton on the whole
            // observed id set, so they consume the unfiltered snapshot;
            // the tracker statistic is computed the same way the
            // pre-filter would.
            let distinct_lossy = obs.iter().filter(|o| o.is_lossy()).count() as u64;
            let hits = if distinct_lossy > k as u64 {
                0
            } else {
                distinct_lossy
            };
            let pending = PendingDiagnosis {
                topk_hits: hits,
                ..pending
            };
            if workers > 1 {
                match self.parallel.prepare(&self.matrix, &obs, &self.pll) {
                    ComponentPlan::Ready(d) => DiagStep::Done(pending.finish(d)),
                    ComponentPlan::Fanout(jobs) => DiagStep::Fanout(pending, jobs),
                }
            } else {
                let d = self.incremental.localize(&self.matrix, &obs, &self.pll);
                DiagStep::Done(pending.finish(d))
            }
        } else {
            let f = prefilter(&self.matrix, &obs, k);
            let pending = PendingDiagnosis {
                topk_hits: f.topk_hits,
                ..pending
            };
            if workers > 1 {
                match self
                    .parallel
                    .prepare(&self.matrix, &f.observations, &self.pll)
                {
                    ComponentPlan::Ready(d) => DiagStep::Done(pending.finish(d)),
                    ComponentPlan::Fanout(jobs) => DiagStep::Fanout(pending, jobs),
                }
            } else {
                let d = localize(&self.matrix, &f.observations, &self.pll);
                DiagStep::Done(pending.finish(d))
            }
        }
    }

    /// Phase 2 of [`diagnose_prepare`](Diagnoser::diagnose_prepare):
    /// merges the fan-out's [`ComponentVerdict`]s (any order) into the
    /// window's final event.
    pub fn diagnose_complete(
        &mut self,
        pending: PendingDiagnosis,
        verdicts: Vec<ComponentVerdict>,
    ) -> DiagnosisEvent {
        pending.finish(self.parallel.complete(verdicts))
    }

    /// Prunes stored reports older than `keep_from`.
    pub fn prune_before(&self, keep_from: u64) {
        self.store.prune_before(keep_from);
    }

    /// Classifies the loss pattern behind a suspect link (§7): aggregates
    /// the per-flow counters of the window's reports over the paths
    /// through the link and looks at the per-flow loss profile. Each
    /// (path, flow) pair is one sample — a blackhole drops a flow on one
    /// path deterministically, so bimodality shows at that granularity.
    pub fn classify_suspect(
        &self,
        window: u64,
        link: LinkId,
        watchdog: &Watchdog,
    ) -> Option<LossClassification> {
        let through: std::collections::HashSet<_> =
            self.matrix.paths_through(link).map(|p| p.id).collect();
        let samples = self
            .store
            .flow_samples(window, &|p| !watchdog.is_healthy(p), &|pid| {
                through.contains(&pid)
            });
        let samples: Vec<FlowSample> = samples
            .into_iter()
            .map(|((pinger, pid, flow), (sent, lost))| {
                let id = ((pinger.0 as u64) << 48) ^ ((pid.0 as u64) << 24) ^ flow;
                FlowSample::new(id, sent, lost)
            })
            .collect();
        classify_loss(&samples, &ClassifyConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::PathCounters;
    use detector_core::types::{LinkId, NodeId, PathId, ProbePath};

    fn matrix() -> ProbeMatrix {
        ProbeMatrix::from_paths(
            2,
            vec![
                ProbePath::from_links(0, vec![LinkId(0), LinkId(1)]),
                ProbePath::from_links(1, vec![LinkId(0)]),
                ProbePath::from_links(2, vec![LinkId(1)]),
            ],
        )
    }

    fn report(pinger: u32, window: u64, rows: &[(u32, u64, u64)]) -> PingerReport {
        let mut r = PingerReport {
            pinger: NodeId(pinger),
            window,
            ..Default::default()
        };
        for &(p, sent, lost) in rows {
            r.paths.insert(
                PathId(p),
                PathCounters {
                    sent,
                    lost,
                    ..Default::default()
                },
            );
        }
        r
    }

    #[test]
    fn diagnoses_from_aggregated_reports() {
        let mut d = Diagnoser::new(matrix(), PllConfig::default());
        // Link 0 bad: paths 0 and 1 lossy from two pingers.
        d.ingest(report(1, 0, &[(0, 50, 25), (1, 50, 25), (2, 50, 0)]));
        d.ingest(report(2, 0, &[(0, 50, 25), (1, 50, 25), (2, 50, 0)]));
        let ev = d.diagnose(0, &Watchdog::new());
        assert_eq!(ev.num_observations, 3);
        assert_eq!(ev.reports, 2);
        assert_eq!(ev.topk_hits, 2);
        assert_eq!(ev.diagnosis.suspect_links(), vec![LinkId(0)]);
    }

    #[test]
    fn flagged_pingers_are_excluded() {
        let mut d = Diagnoser::new(matrix(), PllConfig::default());
        // Pinger 9 is sick and reports everything lost.
        d.ingest(report(1, 0, &[(0, 50, 0), (1, 50, 0), (2, 50, 0)]));
        d.ingest(report(9, 0, &[(0, 50, 50), (1, 50, 50), (2, 50, 50)]));
        let mut w = Watchdog::new();
        w.mark_unhealthy(NodeId(9));
        let ev = d.diagnose(0, &w);
        assert_eq!(ev.reports, 1);
        assert!(ev.diagnosis.is_clean());
    }

    #[test]
    fn empty_window_is_clean() {
        let mut d = Diagnoser::new(matrix(), PllConfig::default());
        let ev = d.diagnose(3, &Watchdog::new());
        assert_eq!(ev.num_observations, 0);
        assert_eq!(ev.reports, 0);
        assert!(ev.diagnosis.is_clean());
    }

    #[test]
    fn sealed_snapshot_matches_the_store_aggregation() {
        let mut d = Diagnoser::new(matrix(), PllConfig::default());
        d.ingest(report(1, 0, &[(0, 50, 25), (1, 40, 0)]));
        d.ingest(report(2, 0, &[(0, 10, 1), (2, 30, 30)]));
        d.ingest(report(9, 0, &[(0, 7, 7), (2, 7, 7)]));
        let mut w = Watchdog::new();
        w.mark_unhealthy(NodeId(9));
        let oracle = d.observations(0, &w);
        let ev = d.diagnose(0, &w);
        assert_eq!(ev.num_observations, oracle.len());
        assert_eq!(
            ev.diagnosis,
            localize(d.matrix(), &oracle, &PllConfig::default())
        );
    }

    #[test]
    fn retract_forfeits_a_folded_report() {
        let d = Diagnoser::new(matrix(), PllConfig::default());
        let r = report(1, 0, &[(0, 50, 50), (1, 50, 50)]);
        d.fold(&r);
        d.retract(&r);
        let mut d = d;
        let ev = d.diagnose(0, &Watchdog::new());
        assert_eq!(ev.num_observations, 0);
        assert_eq!(ev.reports, 0);
        assert!(ev.diagnosis.is_clean());
    }

    #[test]
    fn incremental_mode_matches_full_diagnosis() {
        let mut full = Diagnoser::new(matrix(), PllConfig::default());
        let mut inc = Diagnoser::new(matrix(), PllConfig::default().incremental());
        for w in 0..4u64 {
            let lost = if w % 2 == 0 { 25 } else { 0 };
            for d in [&full, &inc] {
                d.ingest(report(1, w, &[(0, 50, lost), (1, 50, lost), (2, 50, 0)]));
            }
            let a = full.diagnose(w, &Watchdog::new());
            let b = inc.diagnose(w, &Watchdog::new());
            assert_eq!(a.diagnosis, b.diagnosis, "window {w}");
            assert_eq!(a.topk_hits, b.topk_hits, "window {w}");
        }
    }
}
