//! The runtime's event stream: typed window-lifecycle events and the
//! pluggable sinks that consume them.
//!
//! Every [`Detector::step`](crate::Detector::step) emits a totally
//! ordered sequence of [`RuntimeEvent`]s — `WindowStarted` first,
//! `DiagnosisReady` last, with cycle refreshes, per-pinger report
//! ingestions and health exclusions in between. Sinks registered on the
//! builder observe every event; the pipelined scheduler
//! ([`Detector::run_pipelined`](crate::Detector::run_pipelined)) emits
//! the same totally ordered stream from its diagnosis stage, and
//! external report consumers (like the paper's HTTP POST receivers in
//! §6.1) plug in here too.

use std::sync::{Arc, Mutex};

use detector_core::json::{Json, ToJson};
use detector_core::pll::Diagnosis;
use detector_core::types::NodeId;
use serde::{Deserialize, Serialize};

/// Outcome of one 30-second window — the payload of
/// [`RuntimeEvent::DiagnosisReady`] and the return value of
/// [`Detector::step`](crate::Detector::step).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WindowResult {
    /// Window index.
    pub window: u64,
    /// Simulated start time of the window, seconds.
    pub start_s: u64,
    /// Probes sent across all pingers this window (detection probes,
    /// including loss confirmations).
    pub probes_sent: u64,
    /// Number of aggregated path observations.
    pub num_observations: usize,
    /// The PLL diagnosis for the window.
    pub diagnosis: Diagnosis,
}

impl WindowResult {
    /// Rebuilds a window result from its [`ToJson`] representation.
    pub fn from_json(v: &Json) -> Option<WindowResult> {
        Some(WindowResult {
            window: v.get("window")?.as_u64()?,
            start_s: v.get("start_s")?.as_u64()?,
            probes_sent: v.get("probes_sent")?.as_u64()?,
            num_observations: v.get("num_observations")?.as_usize()?,
            diagnosis: Diagnosis::from_json(v.get("diagnosis")?)?,
        })
    }
}

impl ToJson for WindowResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("window", Json::uint(self.window)),
            ("start_s", Json::uint(self.start_s)),
            ("probes_sent", Json::uint(self.probes_sent)),
            ("num_observations", Json::uint(self.num_observations as u64)),
            ("diagnosis", self.diagnosis.to_json()),
        ])
    }
}

/// One typed event in a window's lifecycle, in emission order.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum RuntimeEvent {
    /// A reporting window opened.
    WindowStarted {
        /// Window index.
        window: u64,
        /// Simulated start time, seconds.
        start_s: u64,
    },
    /// The controller recomputed the probe matrix and pinglists (§6.1's
    /// 10-minute cycle). Fires exactly on cycle boundaries.
    CycleRefreshed {
        /// Window in which the refresh happened.
        window: u64,
        /// New deployment version.
        version: u64,
        /// Paths in the refreshed probe matrix.
        num_paths: usize,
    },
    /// A pinger was excluded from this window by the watchdog.
    PingerUnhealthy {
        /// Window index.
        window: u64,
        /// The excluded pinger server.
        pinger: NodeId,
    },
    /// One pinger's window report was ingested by the diagnoser (the
    /// HTTP POST of §6.1).
    ReportIngested {
        /// Window index.
        window: u64,
        /// Reporting pinger.
        pinger: NodeId,
        /// Probes this pinger sent (including loss confirmations).
        probes_sent: u64,
        /// Matrix paths the report carries counters for.
        num_paths: usize,
    },
    /// The ingest plane sealed the window: per-path counters were
    /// aggregated in the sharded plane as the reports arrived, and
    /// diagnosis read the frozen snapshot. Emitted after the last
    /// report/health event of the window, before
    /// [`DiagnosisReady`](RuntimeEvent::DiagnosisReady).
    IngestStats {
        /// Window index.
        window: u64,
        /// Pinger reports folded into the window (a crashed agent's
        /// retracted reports excluded).
        reports: u64,
        /// Distinct paths with observations after health exclusions —
        /// equals the window's `num_observations`.
        paths_active: u64,
        /// Lossy paths served by the unsaturated top-K tracker; zero
        /// when the tracker saturated (more distinct lossy paths than
        /// its capacity) and the pre-filter fell back to a full scan.
        topk_hits: u64,
        /// Key-claim CAS retries in the shards while the window
        /// accumulated. Depends on the execution schedule (always zero
        /// under single-threaded folding), so
        /// [`normalized`](RuntimeEvent::normalized) zeroes it.
        shard_contention: u64,
        /// Retractions the ingest plane could not absorb this window —
        /// `detector_ingest::SealedWindow::retract_mismatch`. Non-zero
        /// means a duplicate crash notification or a retract racing a
        /// seal; always zero in a healthy run.
        retract_mismatch: u64,
    },
    /// Shape of the diagnosis work for the window: how many lossy paths
    /// survived ingestion and how many connected components of the
    /// lossy-path/link incidence they split into — the fan-out width of
    /// component-parallel PLL (`DiagConfig::parallel_components`).
    /// Deterministic (a pure function of the sealed window and the probe
    /// plan), so equivalence harnesses compare it un-normalized. Emitted
    /// after [`IngestStats`](RuntimeEvent::IngestStats), before
    /// [`DiagnosisReady`](RuntimeEvent::DiagnosisReady).
    DiagStats {
        /// Window index.
        window: u64,
        /// Observed paths with losses above the noise filters.
        lossy_paths: u64,
        /// Connected components of the lossy incidence — independent PLL
        /// subproblems. Zero for an all-healthy window.
        components: u64,
        /// Suspect links in the window's diagnosis.
        suspects: u64,
    },
    /// The diagnoser ran PLL over the window's aggregated observations.
    /// Always the last event of a window.
    DiagnosisReady(WindowResult),
    /// A [`TopologyEvent`](detector_topology::TopologyEvent) was applied
    /// between windows and the probe plan was incrementally patched
    /// ([`Detector::apply`](crate::Detector::apply)).
    PlanUpdated {
        /// Topology-view epoch after the event.
        epoch: u64,
        /// Links whose up/down state actually flipped.
        links_changed: usize,
        /// Change in the number of deployed probe paths (new − old).
        probes_delta: i64,
        /// Pinglists re-dispatched (fresh versions). With segmented path
        /// ids a single-cell delta re-dispatches only the lists carrying
        /// the touched cell's paths; every other pinger keeps its
        /// version and its cached binding.
        lists_redispatched: usize,
        /// Entries that traveled under the per-entry diff protocol
        /// (adds + removes across diffed lists, plus every entry of
        /// whole-list replacements).
        entries_diffed: usize,
        /// Exact wire bytes of the dispatch — minimal re-dispatch
        /// measured on the wire, not in list counts.
        bytes_dispatched: u64,
        /// Wall-clock cost of the incremental re-plan, microseconds.
        replan_micros: u64,
    },
}

impl ToJson for RuntimeEvent {
    fn to_json(&self) -> Json {
        match self {
            RuntimeEvent::WindowStarted { window, start_s } => Json::obj(vec![
                ("event", Json::Str("window_started".into())),
                ("window", Json::uint(*window)),
                ("start_s", Json::uint(*start_s)),
            ]),
            RuntimeEvent::CycleRefreshed {
                window,
                version,
                num_paths,
            } => Json::obj(vec![
                ("event", Json::Str("cycle_refreshed".into())),
                ("window", Json::uint(*window)),
                ("version", Json::uint(*version)),
                ("num_paths", Json::uint(*num_paths as u64)),
            ]),
            RuntimeEvent::PingerUnhealthy { window, pinger } => Json::obj(vec![
                ("event", Json::Str("pinger_unhealthy".into())),
                ("window", Json::uint(*window)),
                ("pinger", Json::uint(pinger.0 as u64)),
            ]),
            RuntimeEvent::ReportIngested {
                window,
                pinger,
                probes_sent,
                num_paths,
            } => Json::obj(vec![
                ("event", Json::Str("report_ingested".into())),
                ("window", Json::uint(*window)),
                ("pinger", Json::uint(pinger.0 as u64)),
                ("probes_sent", Json::uint(*probes_sent)),
                ("num_paths", Json::uint(*num_paths as u64)),
            ]),
            RuntimeEvent::IngestStats {
                window,
                reports,
                paths_active,
                topk_hits,
                shard_contention,
                retract_mismatch,
            } => Json::obj(vec![
                ("event", Json::Str("ingest_stats".into())),
                ("window", Json::uint(*window)),
                ("reports", Json::uint(*reports)),
                ("paths_active", Json::uint(*paths_active)),
                ("topk_hits", Json::uint(*topk_hits)),
                ("shard_contention", Json::uint(*shard_contention)),
                ("retract_mismatch", Json::uint(*retract_mismatch)),
            ]),
            RuntimeEvent::DiagStats {
                window,
                lossy_paths,
                components,
                suspects,
            } => Json::obj(vec![
                ("event", Json::Str("diag_stats".into())),
                ("window", Json::uint(*window)),
                ("lossy_paths", Json::uint(*lossy_paths)),
                ("components", Json::uint(*components)),
                ("suspects", Json::uint(*suspects)),
            ]),
            RuntimeEvent::DiagnosisReady(result) => {
                let mut fields = vec![("event".to_string(), Json::Str("diagnosis_ready".into()))];
                if let Json::Object(inner) = result.to_json() {
                    fields.extend(inner);
                }
                Json::Object(fields)
            }
            RuntimeEvent::PlanUpdated {
                epoch,
                links_changed,
                probes_delta,
                lists_redispatched,
                entries_diffed,
                bytes_dispatched,
                replan_micros,
            } => Json::obj(vec![
                ("event", Json::Str("plan_updated".into())),
                ("epoch", Json::uint(*epoch)),
                ("links_changed", Json::uint(*links_changed as u64)),
                ("probes_delta", Json::Int(*probes_delta)),
                ("lists_redispatched", Json::uint(*lists_redispatched as u64)),
                ("entries_diffed", Json::uint(*entries_diffed as u64)),
                ("bytes_dispatched", Json::uint(*bytes_dispatched)),
                ("replan_micros", Json::uint(*replan_micros)),
            ]),
        }
    }
}

impl RuntimeEvent {
    /// This event with its execution-dependent fields zeroed
    /// (`PlanUpdated::replan_micros` and
    /// `IngestStats::shard_contention`) — the canonical form for
    /// comparing event streams across executions, as the
    /// sequential-vs-pipelined equivalence harnesses do. If a future
    /// variant grows another timing field, zero it here and every
    /// harness stays correct.
    pub fn normalized(&self) -> RuntimeEvent {
        match self {
            RuntimeEvent::IngestStats {
                window,
                reports,
                paths_active,
                topk_hits,
                retract_mismatch,
                ..
            } => RuntimeEvent::IngestStats {
                window: *window,
                reports: *reports,
                paths_active: *paths_active,
                topk_hits: *topk_hits,
                // CAS retries depend on thread interleaving, never on
                // what was ingested.
                shard_contention: 0,
                // Retract accounting is deterministic — the harnesses
                // compare it un-normalized.
                retract_mismatch: *retract_mismatch,
            },
            RuntimeEvent::PlanUpdated {
                epoch,
                links_changed,
                probes_delta,
                lists_redispatched,
                entries_diffed,
                bytes_dispatched,
                ..
            } => RuntimeEvent::PlanUpdated {
                epoch: *epoch,
                links_changed: *links_changed,
                probes_delta: *probes_delta,
                lists_redispatched: *lists_redispatched,
                // Dispatch accounting is deterministic (a pure function
                // of the old and new deployments), so equivalence
                // harnesses compare it un-normalized.
                entries_diffed: *entries_diffed,
                bytes_dispatched: *bytes_dispatched,
                replan_micros: 0,
            },
            other => other.clone(),
        }
    }

    /// Rebuilds an event from its [`ToJson`] representation (the inverse
    /// of [`ToJson::to_json`]; every variant round-trips).
    pub fn from_json(v: &Json) -> Option<RuntimeEvent> {
        let window = || v.get("window").and_then(Json::as_u64);
        match v.get("event")?.as_str()? {
            "window_started" => Some(RuntimeEvent::WindowStarted {
                window: window()?,
                start_s: v.get("start_s")?.as_u64()?,
            }),
            "cycle_refreshed" => Some(RuntimeEvent::CycleRefreshed {
                window: window()?,
                version: v.get("version")?.as_u64()?,
                num_paths: v.get("num_paths")?.as_usize()?,
            }),
            "pinger_unhealthy" => Some(RuntimeEvent::PingerUnhealthy {
                window: window()?,
                pinger: NodeId(v.get("pinger")?.as_u32()?),
            }),
            "report_ingested" => Some(RuntimeEvent::ReportIngested {
                window: window()?,
                pinger: NodeId(v.get("pinger")?.as_u32()?),
                probes_sent: v.get("probes_sent")?.as_u64()?,
                num_paths: v.get("num_paths")?.as_usize()?,
            }),
            "ingest_stats" => Some(RuntimeEvent::IngestStats {
                window: window()?,
                reports: v.get("reports")?.as_u64()?,
                paths_active: v.get("paths_active")?.as_u64()?,
                topk_hits: v.get("topk_hits")?.as_u64()?,
                shard_contention: v.get("shard_contention")?.as_u64()?,
                retract_mismatch: v.get("retract_mismatch")?.as_u64()?,
            }),
            "diag_stats" => Some(RuntimeEvent::DiagStats {
                window: window()?,
                lossy_paths: v.get("lossy_paths")?.as_u64()?,
                components: v.get("components")?.as_u64()?,
                suspects: v.get("suspects")?.as_u64()?,
            }),
            "diagnosis_ready" => Some(RuntimeEvent::DiagnosisReady(WindowResult::from_json(v)?)),
            "plan_updated" => Some(RuntimeEvent::PlanUpdated {
                epoch: v.get("epoch")?.as_u64()?,
                links_changed: v.get("links_changed")?.as_usize()?,
                probes_delta: v.get("probes_delta")?.as_i64()?,
                lists_redispatched: v.get("lists_redispatched")?.as_usize()?,
                entries_diffed: v.get("entries_diffed")?.as_usize()?,
                bytes_dispatched: v.get("bytes_dispatched")?.as_u64()?,
                replan_micros: v.get("replan_micros")?.as_u64()?,
            }),
            _ => None,
        }
    }
}

/// A consumer of the runtime's event stream.
///
/// Sinks are registered on [`DetectorBuilder::sink`](crate::DetectorBuilder::sink)
/// and invoked synchronously, in registration order, for every event.
/// Sinks must be `Send`: the pipelined scheduler
/// ([`Detector::run_pipelined`](crate::Detector::run_pipelined)) emits
/// the stream from its diagnosis-stage thread.
pub trait EventSink: Send {
    /// Observes one event. Events arrive in emission order.
    fn on_event(&mut self, event: &RuntimeEvent);
}

/// An [`EventSink`] that records every event into a shared buffer.
///
/// Cloning the sink before handing it to the builder keeps a handle to
/// the buffer, so a test (or operator tooling) can inspect the stream
/// while the detector owns the registered copy.
#[derive(Clone, Debug, Default)]
pub struct CollectingSink {
    events: Arc<Mutex<Vec<RuntimeEvent>>>,
}

impl CollectingSink {
    /// An empty collecting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of all events recorded so far.
    ///
    /// A poisoned collector (a panic elsewhere while appending) still
    /// yields the events recorded up to that point — losing the
    /// observability feed on top of the original failure helps nobody.
    pub fn events(&self) -> Vec<RuntimeEvent> {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// True when no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for CollectingSink {
    fn on_event(&mut self, event: &RuntimeEvent) {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(event.clone());
    }
}

/// An [`EventSink`] that writes one JSON record per completed window.
///
/// Each [`RuntimeEvent::DiagnosisReady`] renders as a single
/// `{"event":"diagnosis_ready",...}` line — the machine-readable feed
/// the bench binaries and external dashboards consume. Intermediate
/// events are not written; use [`CollectingSink`] for full traces.
#[derive(Debug)]
pub struct JsonLinesSink<W: std::io::Write> {
    out: W,
}

impl<W: std::io::Write> JsonLinesSink<W> {
    /// A sink writing JSON lines to `out`.
    pub fn new(out: W) -> Self {
        Self { out }
    }

    /// Consumes the sink and returns the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl JsonLinesSink<std::io::Stdout> {
    /// A sink writing JSON lines to stdout.
    pub fn stdout() -> Self {
        Self::new(std::io::stdout())
    }
}

impl<W: std::io::Write + Send> EventSink for JsonLinesSink<W> {
    fn on_event(&mut self, event: &RuntimeEvent) {
        if let RuntimeEvent::DiagnosisReady(_) = event {
            // A failed write cannot be surfaced from a sink; dropping the
            // record (like a full pipe would) beats poisoning the run.
            let _ = writeln!(self.out, "{}", event.to_json());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> WindowResult {
        WindowResult {
            window: 4,
            start_s: 120,
            probes_sent: 960,
            num_observations: 28,
            diagnosis: Diagnosis::default(),
        }
    }

    #[test]
    fn window_result_round_trips_through_json() {
        let w = sample_result();
        let text = w.to_json().to_string();
        let parsed = WindowResult::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, w);
    }

    #[test]
    fn collecting_sink_shares_its_buffer_across_clones() {
        let collector = CollectingSink::new();
        let mut registered = collector.clone();
        registered.on_event(&RuntimeEvent::WindowStarted {
            window: 0,
            start_s: 0,
        });
        assert_eq!(collector.len(), 1);
        assert!(!collector.is_empty());
    }

    #[test]
    fn runtime_events_round_trip_through_json() {
        let cases = vec![
            RuntimeEvent::WindowStarted {
                window: 3,
                start_s: 90,
            },
            RuntimeEvent::CycleRefreshed {
                window: 20,
                version: 2,
                num_paths: 64,
            },
            RuntimeEvent::PingerUnhealthy {
                window: 5,
                pinger: detector_core::types::NodeId(17),
            },
            RuntimeEvent::ReportIngested {
                window: 5,
                pinger: detector_core::types::NodeId(17),
                probes_sent: 960,
                num_paths: 12,
            },
            RuntimeEvent::IngestStats {
                window: 5,
                reports: 48,
                paths_active: 230,
                topk_hits: 3,
                shard_contention: 9,
                retract_mismatch: 1,
            },
            RuntimeEvent::DiagStats {
                window: 5,
                lossy_paths: 12,
                components: 3,
                suspects: 4,
            },
            RuntimeEvent::DiagnosisReady(sample_result()),
            RuntimeEvent::PlanUpdated {
                epoch: 7,
                links_changed: 4,
                probes_delta: -3,
                lists_redispatched: 5,
                entries_diffed: 11,
                bytes_dispatched: 742,
                replan_micros: 1250,
            },
        ];
        for ev in cases {
            let text = ev.to_json().to_string();
            let parsed = RuntimeEvent::from_json(&Json::parse(&text).unwrap())
                .unwrap_or_else(|| panic!("unparsed: {text}"));
            assert_eq!(parsed, ev);
        }
    }

    #[test]
    fn json_lines_sink_writes_only_diagnosis_records() {
        let mut sink = JsonLinesSink::new(Vec::new());
        sink.on_event(&RuntimeEvent::WindowStarted {
            window: 0,
            start_s: 0,
        });
        sink.on_event(&RuntimeEvent::DiagnosisReady(sample_result()));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        let v = Json::parse(lines[0]).unwrap();
        assert_eq!(
            v.get("event").and_then(Json::as_str),
            Some("diagnosis_ready")
        );
        assert_eq!(v.get("window").and_then(Json::as_u64), Some(4));
    }
}
