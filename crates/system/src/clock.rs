//! Simulated wall clock.

/// A microsecond-resolution simulated clock.
///
/// The runtime schedules windows and controller cycles against this clock
/// instead of the host clock, so campaigns are deterministic and fast.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct SimClock {
    now_us: u64,
}

impl SimClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Current time in whole seconds.
    pub fn now_s(&self) -> u64 {
        self.now_us / 1_000_000
    }

    /// Advances by `us` microseconds.
    pub fn advance_us(&mut self, us: u64) {
        self.now_us += us;
    }

    /// Advances by `s` seconds.
    pub fn advance_s(&mut self, s: u64) {
        self.now_us += s * 1_000_000;
    }

    /// True when `period_s` divides the current second (used for cycle
    /// boundaries).
    pub fn on_boundary(&self, period_s: u64) -> bool {
        period_s != 0 && self.now_us.is_multiple_of(period_s * 1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_reports() {
        let mut c = SimClock::new();
        assert_eq!(c.now_us(), 0);
        c.advance_s(30);
        assert_eq!(c.now_s(), 30);
        c.advance_us(500);
        assert_eq!(c.now_us(), 30_000_500);
    }

    #[test]
    fn boundary_detection() {
        let mut c = SimClock::new();
        assert!(c.on_boundary(30));
        c.advance_s(30);
        assert!(c.on_boundary(30));
        assert!(!c.on_boundary(600));
        c.advance_s(570);
        assert!(c.on_boundary(600));
        assert!(!c.on_boundary(0));
    }
}
