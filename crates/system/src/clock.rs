//! Clocks: the simulated campaign clock ([`SimClock`]) and the probe
//! timestamp seam ([`ProbeClock`]) socket-backed data planes measure
//! RTTs through.
//!
//! Window scheduling always runs on [`SimClock`] — campaigns stay
//! deterministic regardless of the data plane. Real-packet backends
//! additionally need *measurement* time (when was this probe sent, when
//! did its echo arrive); [`ProbeClock`] scopes that to an injectable
//! trait so the retry/timeout machinery is unit-testable with a manual
//! clock ([`ManualProbeClock`]) and so detlint's `determinism` check can
//! see that host time enters the runtime only through the annotated
//! sites in [`HostClock`] — measurement feeds RTT numbers, never the
//! control flow the equivalence proofs compare.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A microsecond-resolution simulated clock.
///
/// The runtime schedules windows and controller cycles against this clock
/// instead of the host clock, so campaigns are deterministic and fast.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct SimClock {
    now_us: u64,
}

impl SimClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Current time in whole seconds.
    pub fn now_s(&self) -> u64 {
        self.now_us / 1_000_000
    }

    /// Advances by `us` microseconds.
    pub fn advance_us(&mut self, us: u64) {
        self.now_us += us;
    }

    /// Advances by `s` seconds.
    pub fn advance_s(&mut self, s: u64) {
        self.now_us += s * 1_000_000;
    }

    /// True when `period_s` divides the current second (used for cycle
    /// boundaries).
    pub fn on_boundary(&self, period_s: u64) -> bool {
        period_s != 0 && self.now_us.is_multiple_of(period_s * 1_000_000)
    }
}

/// Measurement time for socket-backed probes.
///
/// Two domains, deliberately separate:
///
/// * [`mono_us`](ProbeClock::mono_us) — monotonic microseconds since an
///   arbitrary origin; safe for durations (timeout deadlines, fallback
///   RTTs) but not comparable across processes.
/// * [`wall_us`](ProbeClock::wall_us) — CLOCK_REALTIME microseconds
///   since the UNIX epoch; the domain kernel `SO_TIMESTAMP` receive
///   stamps live in, so a send stamped here subtracts cleanly from a
///   kernel stamp.
pub trait ProbeClock: Send + Sync {
    /// Monotonic microseconds since the clock's origin.
    fn mono_us(&self) -> u64;

    /// Wall-clock microseconds since the UNIX epoch (the kernel
    /// `SO_TIMESTAMP` domain).
    fn wall_us(&self) -> u64;
}

/// The host's real clocks — the production [`ProbeClock`].
#[derive(Debug)]
pub struct HostClock {
    origin: Instant,
}

impl HostClock {
    /// A host clock with its monotonic origin at construction time.
    pub fn new() -> Self {
        Self {
            // detlint::allow(determinism, reason = "ProbeClock is the measurement seam; RTT numbers never feed window control flow")
            origin: Instant::now(),
        }
    }
}

impl Default for HostClock {
    fn default() -> Self {
        Self::new()
    }
}

impl ProbeClock for HostClock {
    fn mono_us(&self) -> u64 {
        // detlint::allow(determinism, reason = "ProbeClock is the measurement seam; RTT numbers never feed window control flow")
        self.origin.elapsed().as_micros() as u64
    }

    fn wall_us(&self) -> u64 {
        // detlint::allow(determinism, reason = "kernel SO_TIMESTAMP stamps are CLOCK_REALTIME; send stamps must share that domain")
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0)
    }
}

/// A hand-cranked [`ProbeClock`] for unit tests: both domains advance
/// only when told to, so timeout/retry and kernel-vs-monotonic fallback
/// logic is testable without sleeping.
#[derive(Debug, Default)]
pub struct ManualProbeClock {
    mono: AtomicU64,
    wall: AtomicU64,
}

impl ManualProbeClock {
    /// A manual clock at mono = 0, wall = `wall_us`.
    pub fn starting_at(wall_us: u64) -> Self {
        Self {
            mono: AtomicU64::new(0),
            wall: AtomicU64::new(wall_us),
        }
    }

    /// Advances both domains by `us` microseconds.
    pub fn advance_us(&self, us: u64) {
        self.mono.fetch_add(us, Ordering::SeqCst);
        self.wall.fetch_add(us, Ordering::SeqCst);
    }

    /// Steps the wall clock only (simulating an NTP jump), leaving the
    /// monotonic domain untouched.
    pub fn step_wall_us(&self, us: i64) {
        if us >= 0 {
            self.wall.fetch_add(us as u64, Ordering::SeqCst);
        } else {
            self.wall.fetch_sub(us.unsigned_abs(), Ordering::SeqCst);
        }
    }
}

impl ProbeClock for ManualProbeClock {
    fn mono_us(&self) -> u64 {
        self.mono.load(Ordering::SeqCst)
    }

    fn wall_us(&self) -> u64 {
        self.wall.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_reports() {
        let mut c = SimClock::new();
        assert_eq!(c.now_us(), 0);
        c.advance_s(30);
        assert_eq!(c.now_s(), 30);
        c.advance_us(500);
        assert_eq!(c.now_us(), 30_000_500);
    }

    #[test]
    fn boundary_detection() {
        let mut c = SimClock::new();
        assert!(c.on_boundary(30));
        c.advance_s(30);
        assert!(c.on_boundary(30));
        assert!(!c.on_boundary(600));
        c.advance_s(570);
        assert!(c.on_boundary(600));
        assert!(!c.on_boundary(0));
    }

    #[test]
    fn host_clock_domains_advance() {
        let c = HostClock::new();
        let m0 = c.mono_us();
        let w0 = c.wall_us();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(c.mono_us() >= m0 + 1_000, "monotonic must advance");
        assert!(c.wall_us() > w0, "wall clock must advance");
        assert!(w0 > 1_600_000_000_000_000, "wall domain is unix-epoch µs");
    }

    #[test]
    fn manual_clock_is_hand_cranked() {
        let c = ManualProbeClock::starting_at(1_000_000);
        assert_eq!(c.mono_us(), 0);
        assert_eq!(c.wall_us(), 1_000_000);
        c.advance_us(250);
        assert_eq!((c.mono_us(), c.wall_us()), (250, 1_000_250));
        c.step_wall_us(-500);
        assert_eq!(c.mono_us(), 250, "wall steps must not move mono");
        assert_eq!(c.wall_us(), 999_750);
    }
}
