//! Offline shim for the `rand` crate (0.8-era API).
//!
//! The build environment has no network access, so the workspace vendors
//! a minimal, deterministic replacement implementing exactly the surface
//! this repository uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::SmallRng`], and the [`Rng`] extension methods `gen` /
//! `gen_range`. The generator is xoshiro256++ seeded through SplitMix64 —
//! the same family the real `SmallRng` uses on 64-bit targets — so
//! statistical quality is adequate for simulation workloads, and results
//! are reproducible across runs and platforms.

use core::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be produced uniformly at random (the shim's analogue of
/// sampling from the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = u128::sample_standard(rng) % span;
                ((self.start as u128).wrapping_add(draw)) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let draw = u128::sample_standard(rng) % span;
                ((lo as u128).wrapping_add(draw)) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed (SplitMix64) and constructs.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic PRNG (xoshiro256++).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            if s.iter().all(|&w| w == 0) {
                s = [1, 2, 3, 4];
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut st = state;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl SmallRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u16 = rng.gen_range(32_768..60_000);
            assert!((32_768..60_000).contains(&v));
            let f = rng.gen_range(-5.0..-4.0f64);
            assert!((-5.0..-4.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn distinct_seeds_differ() {
        use super::RngCore;
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
