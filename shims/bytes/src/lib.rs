//! Offline shim for the `bytes` crate.
//!
//! Implements the subset this workspace uses for probe-packet
//! encode/decode: `BytesMut` (growable, big-endian `put_*`), `Bytes`
//! (cheaply cloneable immutable view over shared storage), and the
//! `Buf`/`BufMut` traits with big-endian `get_*`/`put_*` accessors.
//! Semantics match the real crate for these operations; zero-copy
//! `split_to`/`slice` are preserved via `Arc` sharing.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Read-side cursor operations.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// A view of the unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one `u8` and advances.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16` and advances.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32` and advances.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64` and advances.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
}

/// Write-side operations (big-endian, as in the real crate).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// Immutable, cheaply cloneable byte buffer (a range view over shared
/// storage).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// A sub-view of this buffer (zero-copy).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

/// Growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    read: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
            read: 0,
        }
    }

    /// Length of the unconsumed contents.
    pub fn len(&self) -> usize {
        self.buf.len() - self.read
    }

    /// Whether the unconsumed contents are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits off and returns the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = BytesMut {
            buf: self.buf[self.read..self.read + at].to_vec(),
            read: 0,
        };
        self.read += at;
        head
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        if self.read > 0 {
            self.buf.drain(..self.read);
        }
        Bytes::from(self.buf)
    }

    /// Copies the unconsumed contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf[self.read..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.read += cnt;
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, Bytes, BytesMut};

    #[test]
    fn round_trip_big_endian() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(1);
        b.put_u16(0x0203);
        b.put_u32(0x0405_0607);
        b.put_u64(0x1112_1314_1516_1718);
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 15);
        assert_eq!(frozen.get_u8(), 1);
        assert_eq!(frozen.get_u16(), 0x0203);
        assert_eq!(frozen.get_u32(), 0x0405_0607);
        assert_eq!(frozen.get_u64(), 0x1112_1314_1516_1718);
        assert!(frozen.is_empty());
    }

    #[test]
    fn split_and_slice_share_storage() {
        let mut b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head.as_ref(), &[0, 1]);
        assert_eq!(b.as_ref(), &[2, 3, 4, 5]);
        let s = b.slice(1..3);
        assert_eq!(s.as_ref(), &[3, 4]);
        assert_eq!(b[0], 2);
    }
}
