//! Offline shim for the `proptest` crate.
//!
//! Implements the surface this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, `collection::{vec, btree_set}`, `Just`, `ProptestConfig`,
//! and the `proptest!` / `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest: inputs are drawn from a fixed-seed
//! deterministic RNG (no persisted failure files), there is **no
//! shrinking** — a failing case panics with the assertion message — and
//! `prop_assume!` skips the case without drawing a replacement. Cases are
//! deterministic per test function, so failures reproduce exactly.

use std::collections::BTreeSet;
use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// The RNG handed to strategies.
pub struct TestRunner {
    rng: SmallRng,
}

impl TestRunner {
    /// A runner with a deterministic per-test seed.
    pub fn deterministic(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Draws 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Access the underlying RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// A recipe for generating random values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns
    /// for it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Filters generated values; non-matching draws are retried.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }
}

/// Strategy yielding a constant.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.new_value(runner))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn new_value(&self, runner: &mut TestRunner) -> T::Value {
        (self.f)(self.inner.new_value(runner)).new_value(runner)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, runner: &mut TestRunner) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(runner);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter: predicate rejected 1000 consecutive draws");
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.new_value(runner),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use rand::Rng;

    use super::{BTreeSet, Range, Strategy, TestRunner};

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of values from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
            let len = runner.rng().gen_range(self.size.clone());
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with target size drawn from
    /// `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `BTreeSet` of values from `element`; aims for a size in `size`
    /// (duplicates shrink the realized size, as in real proptest).
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
            let target = runner.rng().gen_range(self.size.clone()).max(1);
            let mut out = BTreeSet::new();
            // Bounded retries: with a small element domain the target may
            // exceed the number of distinct values.
            for _ in 0..target * 20 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.new_value(runner));
            }
            out
        }

        type Value = BTreeSet<S::Value>;
    }
}

/// Runner configuration (`proptest::test_runner::Config` stand-in).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Everything the `proptest!` macro and typical tests need in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestRunner,
    };
}

/// Deterministic seed for a named test: FNV-1a over the name, so each
/// property gets an independent but reproducible stream.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Control-flow signal used by `prop_assume!`.
pub enum CaseResult {
    /// The case ran to completion.
    Ok,
    /// The case was discarded by `prop_assume!`.
    Reject,
}

/// Defines property tests. Supports the subset of real proptest syntax
/// used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop((a, b) in strategy(), c in 0usize..10) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner =
                    $crate::TestRunner::deterministic($crate::seed_for(stringify!($name)));
                let mut ran = 0u32;
                let mut attempts = 0u32;
                while ran < config.cases && attempts < config.cases * 20 {
                    attempts += 1;
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut runner);)+
                    // The closure gives `prop_assume!` an early-exit
                    // channel (`return CaseResult::Reject`).
                    #[allow(clippy::redundant_closure_call)]
                    let outcome = (|| -> $crate::CaseResult {
                        $body
                        $crate::CaseResult::Ok
                    })();
                    if let $crate::CaseResult::Ok = outcome {
                        ran += 1;
                    }
                }
                assert!(
                    ran > 0,
                    "proptest shim: every generated case was rejected by prop_assume!"
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts inside a property (panics; the shim has no shrinking phase).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Discards the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return $crate::CaseResult::Reject;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = (usize, Vec<u32>)> {
        (2usize..10).prop_flat_map(|n| (Just(n), crate::collection::vec(0u32..n as u32, 1..5)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_values_respect_bounds((n, xs) in pairs(), k in 0usize..7) {
            prop_assert!((2..10).contains(&n));
            prop_assert!(k < 7);
            prop_assert!(!xs.is_empty() && xs.len() < 5);
            for x in xs {
                prop_assert!((x as usize) < n, "element {} out of bounds {}", x, n);
            }
        }

        #[test]
        fn assume_rejects_without_failing(v in 0u32..100) {
            prop_assume!(v % 2 == 0);
            prop_assert!(v % 2 == 0);
        }
    }

    #[test]
    fn btree_set_is_bounded() {
        let mut runner = TestRunner::deterministic(1);
        let s = crate::collection::btree_set(0u32..4, 1..5);
        for _ in 0..100 {
            let set = Strategy::new_value(&s, &mut runner);
            assert!(!set.is_empty() && set.len() <= 4);
        }
    }
}
