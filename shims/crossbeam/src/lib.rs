//! Offline shim for the `crossbeam` crate.
//!
//! The workspace uses `crossbeam::thread::scope` and
//! `crossbeam::channel`. Since Rust 1.63 the standard library provides
//! scoped threads, so the thread half is a thin adapter: it reproduces
//! crossbeam's closure signature (the scope handle is passed to every
//! spawned closure, and the outer call returns `Err` instead of
//! panicking when a child thread panics). The channel half is a
//! Mutex+Condvar MPMC queue with crossbeam's disconnect semantics
//! (`recv` errors once every sender is gone and the queue is drained;
//! `send` errors once every receiver is gone).

/// Scoped-thread support mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Handle for spawning threads inside a [`scope`] call.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope handle so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined before
    /// returning. A panic in any spawned thread surfaces as `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

/// Multi-producer multi-consumer channels mirroring `crossbeam::channel`.
///
/// Implemented as a `Mutex<VecDeque>` + two `Condvar`s. The subset is
/// what the workspace needs: `bounded`/`unbounded` constructors,
/// cloneable `Sender`/`Receiver` halves, blocking `send`/`recv`,
/// `try_recv`, and iteration. `bounded(0)` is a true rendezvous channel,
/// matching crossbeam: `send` blocks until a receiver takes the message
/// (tracked by per-message tickets), not until the message is merely
/// enqueued.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        /// Messages with their push tickets. For capacity > 0 the ticket
        /// is bookkeeping only; for a rendezvous channel (`cap == 0`) a
        /// blocked sender uses it to learn when *its* message was taken
        /// (and to reclaim it if every receiver leaves first).
        queue: VecDeque<(u64, T)>,
        /// `None` = unbounded.
        cap: Option<usize>,
        /// Tickets assigned to pushed messages so far.
        pushed: u64,
        /// Tickets consumed by `recv`/`try_recv` so far. Pops are FIFO,
        /// so `popped > t` means the message with ticket `t` was taken.
        popped: u64,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// A channel holding at most `cap` in-flight messages; `send` blocks
    /// while it is full. `bounded(0)` is a rendezvous channel: `send`
    /// blocks until a receiver takes the message.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }

    /// A channel with no capacity bound; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                pushed: 0,
                popped: 0,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued — or, on a rendezvous
        /// channel (`bounded(0)`), until a receiver has taken it. If
        /// every receiver is dropped first, the message comes back in
        /// the error.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            if st.cap == Some(0) {
                return self.send_rendezvous(st, msg);
            }
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match st.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.shared.not_full.wait(st).expect("channel poisoned");
                    }
                    _ => break,
                }
            }
            let ticket = st.pushed;
            st.pushed += 1;
            st.queue.push_back((ticket, msg));
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// The rendezvous handoff: park the message in the queue, then
        /// block until a receiver pops it. Pops are FIFO by ticket, so
        /// `popped > ticket` proves *this* message was taken; if every
        /// receiver leaves while it is still queued, it is reclaimed
        /// into the `SendError`.
        fn send_rendezvous(
            &self,
            mut st: std::sync::MutexGuard<'_, State<T>>,
            msg: T,
        ) -> Result<(), SendError<T>> {
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            let ticket = st.pushed;
            st.pushed += 1;
            st.queue.push_back((ticket, msg));
            self.shared.not_empty.notify_one();
            loop {
                if st.popped > ticket {
                    return Ok(());
                }
                if st.receivers == 0 {
                    return match st.queue.iter().position(|(t, _)| *t == ticket) {
                        Some(at) => {
                            let (_, msg) = st.queue.remove(at).expect("position just found");
                            Err(SendError(msg))
                        }
                        // FIFO pops mean an absent ticket was consumed
                        // (popped is updated under the same lock, so this
                        // arm is unreachable; kept for robustness).
                        None => Ok(()),
                    };
                }
                st = self.shared.not_full.wait(st).expect("channel poisoned");
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives (or until the channel is empty
        /// with every sender dropped).
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some((ticket, msg)) = st.queue.pop_front() {
                    st.popped = ticket + 1;
                    let rendezvous = st.cap == Some(0);
                    drop(st);
                    if rendezvous {
                        // Every parked sender re-checks its own ticket.
                        self.shared.not_full.notify_all();
                    } else {
                        self.shared.not_full.notify_one();
                    }
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).expect("channel poisoned");
            }
        }

        /// Pops a message if one is ready; never blocks. On a rendezvous
        /// channel this succeeds exactly when a sender is parked in
        /// `send`, completing that sender's handoff.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            if let Some((ticket, msg)) = st.queue.pop_front() {
                st.popped = ticket + 1;
                let rendezvous = st.cap == Some(0);
                drop(st);
                if rendezvous {
                    self.shared.not_full.notify_all();
                } else {
                    self.shared.not_full.notify_one();
                }
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .queue
                .len()
        }

        /// True when no message is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// A blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Iterator over received messages (see [`Receiver::iter`]).
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel poisoned").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                // Unblock every receiver waiting for data that will never
                // arrive.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                // Unblock every sender waiting for room that will never
                // appear.
                self.shared.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawned_threads_run_and_join() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn child_panic_becomes_err() {
        let res = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(res.is_err());
    }

    #[test]
    fn channel_fifo_and_disconnect() {
        let (tx, rx) = super::channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(super::channel::RecvError));
    }

    #[test]
    fn send_fails_once_receivers_are_gone() {
        let (tx, rx) = super::channel::unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(super::channel::SendError(7)));
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let (tx, rx) = super::channel::bounded(2);
        let produced = AtomicUsize::new(0);
        super::thread::scope(|s| {
            s.spawn(|_| {
                for i in 0..64 {
                    tx.send(i).unwrap();
                    produced.fetch_add(1, Ordering::SeqCst);
                }
            });
            let got: Vec<usize> = (0..64).map(|_| rx.recv().unwrap()).collect();
            assert_eq!(got, (0..64).collect::<Vec<_>>());
        })
        .unwrap();
        assert_eq!(produced.load(Ordering::SeqCst), 64);
        // The queue never grew past the bound.
        assert!(rx.is_empty());
    }

    #[test]
    fn mpmc_consumers_drain_everything_exactly_once() {
        let (tx, rx) = super::channel::bounded(4);
        let consumed = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..3 {
                let rx = rx.clone();
                let consumed = &consumed;
                s.spawn(move |_| {
                    while rx.recv().is_ok() {
                        consumed.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
        })
        .unwrap();
        assert_eq!(consumed.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn bounded_zero_is_a_rendezvous() {
        // `send` on a zero-capacity channel must not complete until a
        // receiver takes the message — enqueueing alone is not enough.
        use std::sync::atomic::AtomicBool;
        let (tx, rx) = super::channel::bounded(0);
        let sent = AtomicBool::new(false);
        super::thread::scope(|s| {
            s.spawn(|_| {
                tx.send(42).unwrap();
                sent.store(true, Ordering::SeqCst);
            });
            // Give the sender ample time to park: if bounded(0) silently
            // rounded up to capacity 1 (the old divergence), the send
            // would have completed by now.
            std::thread::sleep(std::time::Duration::from_millis(50));
            assert!(
                !sent.load(Ordering::SeqCst),
                "send completed before any receiver took the message"
            );
            assert_eq!(rx.recv(), Ok(42));
        })
        .unwrap();
        assert!(sent.load(Ordering::SeqCst));
    }

    #[test]
    fn rendezvous_reclaims_message_when_receivers_leave() {
        // A parked rendezvous sender whose receivers all drop must get
        // its message back in the SendError instead of hanging (or
        // pretending delivery happened).
        let (tx, rx) = super::channel::bounded::<u32>(0);
        let res = super::thread::scope(|s| {
            let h = s.spawn(move |_| tx.send(7));
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(rx);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(res, Err(super::channel::SendError(7)));
    }

    #[test]
    fn rendezvous_handoffs_stay_fifo_across_senders() {
        let (tx, rx) = super::channel::bounded(0);
        super::thread::scope(|s| {
            for i in 0..4 {
                let tx = tx.clone();
                s.spawn(move |_| tx.send(i).unwrap());
                // Serialize the parks so arrival order is deterministic.
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            drop(tx);
            let got: Vec<i32> = rx.iter().collect();
            assert_eq!(got, vec![0, 1, 2, 3]);
        })
        .unwrap();
    }

    #[test]
    fn try_recv_reports_empty_vs_disconnected() {
        use super::channel::TryRecvError;
        let (tx, rx) = super::channel::unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn receiver_iterates_until_disconnect() {
        let (tx, rx) = super::channel::unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let all: Vec<i32> = rx.iter().collect();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }
}
