//! Offline shim for the `crossbeam` crate.
//!
//! The workspace uses `crossbeam::thread::scope` and
//! `crossbeam::channel`. Since Rust 1.63 the standard library provides
//! scoped threads, so the thread half is a thin adapter: it reproduces
//! crossbeam's closure signature (the scope handle is passed to every
//! spawned closure, and the outer call returns `Err` instead of
//! panicking when a child thread panics). The channel half is a
//! Mutex+Condvar MPMC queue with crossbeam's disconnect semantics
//! (`recv` errors once every sender is gone and the queue is drained;
//! `send` errors once every receiver is gone).

/// Scoped-thread support mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Handle for spawning threads inside a [`scope`] call.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope handle so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined before
    /// returning. A panic in any spawned thread surfaces as `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

/// Multi-producer multi-consumer channels mirroring `crossbeam::channel`.
///
/// Implemented as a `Mutex<VecDeque>` + two `Condvar`s. The subset is
/// what the workspace needs: `bounded`/`unbounded` constructors,
/// cloneable `Sender`/`Receiver` halves, blocking `send`/`recv`,
/// `try_recv`, and iteration. One deliberate divergence: crossbeam's
/// `bounded(0)` is a rendezvous channel; here a zero capacity is rounded
/// up to one (this workspace never asks for a rendezvous).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        /// `None` = unbounded.
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// A channel holding at most `cap` in-flight messages; `send` blocks
    /// while it is full. A `cap` of zero is rounded up to one (see the
    /// module docs).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    /// A channel with no capacity bound; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued (or until every receiver
        /// is dropped, in which case the message comes back in the error).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match st.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.shared.not_full.wait(st).expect("channel poisoned");
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives (or until the channel is empty
        /// with every sender dropped).
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).expect("channel poisoned");
            }
        }

        /// Pops a message if one is ready; never blocks.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .queue
                .len()
        }

        /// True when no message is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// A blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Iterator over received messages (see [`Receiver::iter`]).
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel poisoned").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                // Unblock every receiver waiting for data that will never
                // arrive.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                // Unblock every sender waiting for room that will never
                // appear.
                self.shared.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawned_threads_run_and_join() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn child_panic_becomes_err() {
        let res = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(res.is_err());
    }

    #[test]
    fn channel_fifo_and_disconnect() {
        let (tx, rx) = super::channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(super::channel::RecvError));
    }

    #[test]
    fn send_fails_once_receivers_are_gone() {
        let (tx, rx) = super::channel::unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(super::channel::SendError(7)));
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let (tx, rx) = super::channel::bounded(2);
        let produced = AtomicUsize::new(0);
        super::thread::scope(|s| {
            s.spawn(|_| {
                for i in 0..64 {
                    tx.send(i).unwrap();
                    produced.fetch_add(1, Ordering::SeqCst);
                }
            });
            let got: Vec<usize> = (0..64).map(|_| rx.recv().unwrap()).collect();
            assert_eq!(got, (0..64).collect::<Vec<_>>());
        })
        .unwrap();
        assert_eq!(produced.load(Ordering::SeqCst), 64);
        // The queue never grew past the bound.
        assert!(rx.is_empty());
    }

    #[test]
    fn mpmc_consumers_drain_everything_exactly_once() {
        let (tx, rx) = super::channel::bounded(4);
        let consumed = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..3 {
                let rx = rx.clone();
                let consumed = &consumed;
                s.spawn(move |_| {
                    while rx.recv().is_ok() {
                        consumed.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
        })
        .unwrap();
        assert_eq!(consumed.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn try_recv_reports_empty_vs_disconnected() {
        use super::channel::TryRecvError;
        let (tx, rx) = super::channel::unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn receiver_iterates_until_disconnect() {
        let (tx, rx) = super::channel::unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let all: Vec<i32> = rx.iter().collect();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }
}
