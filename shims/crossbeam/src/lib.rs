//! Offline shim for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is used by this workspace. Since Rust
//! 1.63 the standard library provides scoped threads, so the shim is a
//! thin adapter: it reproduces crossbeam's closure signature (the scope
//! handle is passed to every spawned closure, and the outer call returns
//! `Err` instead of panicking when a child thread panics).

/// Scoped-thread support mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Handle for spawning threads inside a [`scope`] call.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope handle so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined before
    /// returning. A panic in any spawned thread surfaces as `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawned_threads_run_and_join() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn child_panic_becomes_err() {
        let res = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(res.is_err());
    }
}
