//! Offline shim for `serde_derive`: the derives expand to nothing.
//!
//! The sibling `serde` shim blanket-implements its marker traits for all
//! types, so an empty expansion is sufficient for every
//! `#[derive(Serialize, Deserialize)]` in the workspace.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
