//! Offline shim for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `iter_batched` (setup excluded
//! from timing), `BenchmarkId`, `black_box` — with a simple fixed-sample
//! harness: each benchmark is warmed up, then timed over `sample_size`
//! samples, and min/median/mean/max per-iteration times plus the sample
//! standard deviation are printed, so cross-benchmark comparisons (e.g.
//! full vs incremental re-plan latency) rest on robust statistics rather
//! than a single mean. No plots or baselines; enough to compile under
//! `cargo bench --no-run` and give indicative numbers when run.

use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, as the real crate renders it.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Per-iteration timing callback holder.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
    iters_per_sample: u64,
}

/// Hint for how expensive `iter_batched` setup values are. The shim's
/// fixed-sample harness runs one routine call per sample regardless, so
/// the hint is accepted for API compatibility and otherwise ignored.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is small; the real crate batches many per timing.
    #[default]
    SmallInput,
    /// Setup output is large; the real crate times one at a time.
    LargeInput,
    /// One setup per iteration, always.
    PerIteration,
}

impl Bencher {
    /// Times `f`, recording one sample per invocation batch.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up (also primes caches/allocations).
        black_box(f());
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    /// Times `routine` over inputs produced by `setup`, excluding the
    /// setup cost from the measurement — the shape incremental-vs-full
    /// comparisons need when each timed run consumes a fresh clone of
    /// some state (e.g. a probe plan to patch).
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        // Warm-up.
        black_box(routine(setup()));
        for _ in 0..self.target_samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            target_samples: self.sample_size,
            iters_per_sample: 1,
        };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{}/{}: no samples", self.name, id);
            return;
        }
        let stats = SampleStats::from_samples(&b.samples);
        println!(
            "{}/{}: [min {:?} med {:?} mean {:?} max {:?} ± {:?}] ({} samples)",
            self.name,
            id,
            stats.min,
            stats.median,
            stats.mean,
            stats.max,
            stats.std_dev,
            b.samples.len()
        );
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if let Err(e) = append_json_record(&path, &self.name, &id, &stats, b.samples.len()) {
                eprintln!("criterion shim: cannot write {path}: {e}");
            }
        }
    }

    /// Registers and immediately runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().id;
        self.run(id, &mut f);
        self
    }

    /// Registers and immediately runs a benchmark over `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into().id;
        self.run(id, &mut |b| f(b, input));
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Appends one JSON-lines record of a benchmark's stats to the file
/// named by the `CRITERION_JSON` env var. Times are nanoseconds, so the
/// records are machine-comparable across runs (the workspace commits
/// `BENCH_*.json` snapshots built from this feed).
fn append_json_record(
    path: &str,
    group: &str,
    id: &str,
    stats: &SampleStats,
    samples: usize,
) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(
        f,
        "{{\"group\":\"{}\",\"bench\":\"{}\",\"min_ns\":{},\"median_ns\":{},\"mean_ns\":{},\
         \"max_ns\":{},\"std_dev_ns\":{},\"samples\":{}}}",
        group,
        id,
        stats.min.as_nanos(),
        stats.median.as_nanos(),
        stats.mean.as_nanos(),
        stats.max.as_nanos(),
        stats.std_dev.as_nanos(),
        samples
    )
}

/// Summary statistics over a benchmark's per-iteration samples.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampleStats {
    /// Fastest sample.
    pub min: Duration,
    /// Median sample (lower-middle for even counts).
    pub median: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Slowest sample.
    pub max: Duration,
    /// Sample standard deviation (n − 1 denominator; zero for n = 1).
    pub std_dev: Duration,
}

impl SampleStats {
    /// Computes min/median/mean/max/std-dev over `samples` (must be
    /// non-empty).
    pub fn from_samples(samples: &[Duration]) -> SampleStats {
        assert!(!samples.is_empty(), "no samples");
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let sum: Duration = sorted.iter().sum();
        let mean = sum / n as u32;
        let mean_ns = mean.as_nanos() as f64;
        let var = if n > 1 {
            sorted
                .iter()
                .map(|d| {
                    let diff = d.as_nanos() as f64 - mean_ns;
                    diff * diff
                })
                .sum::<f64>()
                / (n - 1) as f64
        } else {
            0.0
        };
        SampleStats {
            min: sorted[0],
            median: sorted[(n - 1) / 2],
            mean,
            max: sorted[n - 1],
            std_dev: Duration::from_nanos(var.sqrt() as u64),
        }
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }

    /// Registers and immediately runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group function that runs the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::{BatchSize, Criterion, SampleStats};
    use std::time::Duration;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut runs = 0u32;
        g.sample_size(3).bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        assert!(runs >= 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut setups = 0u32;
        let mut routines = 0u32;
        g.sample_size(4).bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |x| {
                    routines += 1;
                    x
                },
                BatchSize::SmallInput,
            )
        });
        g.finish();
        // One warm-up pair plus one per sample.
        assert_eq!(setups, 5);
        assert_eq!(routines, 5);
    }

    #[test]
    fn stats_report_median_and_std_dev() {
        let samples: Vec<Duration> = [4u64, 1, 2, 8]
            .iter()
            .map(|&ms| Duration::from_millis(ms))
            .collect();
        let s = SampleStats::from_samples(&samples);
        assert_eq!(s.min, Duration::from_millis(1));
        assert_eq!(s.max, Duration::from_millis(8));
        // Lower-middle median of [1, 2, 4, 8].
        assert_eq!(s.median, Duration::from_millis(2));
        assert_eq!(s.mean, Duration::from_nanos(3_750_000));
        // Sample std-dev of [1,2,4,8] ms around 3.75 ms ≈ 3.095 ms.
        let sd_ms = s.std_dev.as_secs_f64() * 1e3;
        assert!((sd_ms - 3.095).abs() < 0.01, "std dev {sd_ms} ms");
    }

    #[test]
    fn json_records_have_machine_readable_fields() {
        let s = SampleStats::from_samples(&[Duration::from_micros(3), Duration::from_micros(5)]);
        let path = std::env::temp_dir().join("criterion_shim_json_test.jsonl");
        let path_s = path.to_string_lossy().into_owned();
        let _ = std::fs::remove_file(&path);
        super::append_json_record(&path_s, "g", "b/1", &s, 2).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"group\":\"g\""), "{text}");
        assert!(text.contains("\"bench\":\"b/1\""), "{text}");
        assert!(text.contains("\"median_ns\":3000"), "{text}");
        assert!(text.contains("\"samples\":2"), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn single_sample_has_zero_std_dev() {
        let s = SampleStats::from_samples(&[Duration::from_millis(5)]);
        assert_eq!(s.std_dev, Duration::ZERO);
        assert_eq!(s.median, Duration::from_millis(5));
    }
}
