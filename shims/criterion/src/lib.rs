//! Offline shim for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `black_box` —
//! with a simple fixed-sample harness: each benchmark is warmed up, then
//! timed over `sample_size` samples, and min/mean/max per-iteration times
//! are printed. No statistics, plots, or baselines; enough to compile
//! under `cargo bench --no-run` and give indicative numbers when run.

use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, as the real crate renders it.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Per-iteration timing callback holder.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, recording one sample per invocation batch.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up (also primes caches/allocations).
        black_box(f());
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            target_samples: self.sample_size,
            iters_per_sample: 1,
        };
        f(&mut b);
        let (min, max, sum) = b.samples.iter().fold(
            (Duration::MAX, Duration::ZERO, Duration::ZERO),
            |(mn, mx, s), &d| (mn.min(d), mx.max(d), s + d),
        );
        if b.samples.is_empty() {
            println!("{}/{}: no samples", self.name, id);
        } else {
            let mean = sum / b.samples.len() as u32;
            println!(
                "{}/{}: [{:?} {:?} {:?}] ({} samples)",
                self.name,
                id,
                min,
                mean,
                max,
                b.samples.len()
            );
        }
    }

    /// Registers and immediately runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().id;
        self.run(id, &mut f);
        self
    }

    /// Registers and immediately runs a benchmark over `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into().id;
        self.run(id, &mut |b| f(b, input));
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }

    /// Registers and immediately runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group function that runs the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::Criterion;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut runs = 0u32;
        g.sample_size(3).bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        assert!(runs >= 3);
    }
}
