//! Offline shim for the `serde` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! a minimal replacement. Serialization is not on any tested code path —
//! the repository only *derives* `Serialize`/`Deserialize` so downstream
//! consumers can wire in real serde later. The shim therefore provides
//! the two traits as blanket-implemented markers and no-op derive macros,
//! keeping every `#[derive(Serialize, Deserialize)]` and trait bound
//! compiling unchanged. Swapping back to real serde is a one-line
//! manifest change once a registry is reachable.

/// Marker stand-in for `serde::Serialize`; blanket-implemented so trait
/// bounds written against real serde keep compiling.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Stand-in for the `serde::de` module.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Stand-in for the `serde::ser` module.
pub mod ser {
    pub use super::Serialize;
}

pub use serde_derive::{Deserialize, Serialize};
