//! Offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API
//! (guards are returned directly, poisoning is unwrapped away — matching
//! parking_lot's no-poisoning semantics for code that never leaks a
//! panicking critical section).
//!
//! # Debug-only lock-order ranks
//!
//! Locks built with [`Mutex::with_rank`] / [`RwLock::with_rank`] carry a
//! numeric rank and a name. Under `debug_assertions`, every acquisition
//! asserts that all ranked locks already held by the current thread have
//! a *strictly smaller* rank — equal rank included, so re-entrant
//! acquisition of the same lock trips the check too. Any execution that
//! could deadlock via AB/BA ordering panics deterministically on the
//! first mis-ordered acquisition instead of hanging once in a thousand
//! runs. Release builds skip the bookkeeping entirely; unranked locks
//! (`new`) are never tracked. This is the dynamic complement to
//! `detlint`'s static lock-order check: detlint sees orderings in the
//! source, the rank check sees orderings the tests actually execute.

use std::ops::{Deref, DerefMut};
use std::sync;

/// Rank + name of a ranked lock.
type Rank = Option<(u32, &'static str)>;

#[cfg(debug_assertions)]
mod held {
    use super::Rank;
    use std::cell::RefCell;

    thread_local! {
        static STACK: RefCell<Vec<(u32, &'static str)>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn acquire(rank: Rank) {
        let Some((r, name)) = rank else { return };
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(&(held_r, held_name)) = s.iter().find(|&&(held_r, _)| held_r >= r) {
                panic!(
                    "lock-order violation: acquiring `{name}` (rank {r}) while `{held_name}` \
                     (rank {held_r}) is held by this thread; ranks must strictly increase"
                );
            }
            s.push((r, name));
        });
    }

    pub(super) fn release(rank: Rank) {
        let Some(entry) = rank else { return };
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Guards may drop out of acquisition order; remove the
            // newest matching entry rather than popping blindly.
            if let Some(pos) = s.iter().rposition(|&e| e == entry) {
                s.remove(pos);
            }
        });
    }
}

#[cfg(not(debug_assertions))]
mod held {
    use super::Rank;

    pub(super) fn acquire(_rank: Rank) {}
    pub(super) fn release(_rank: Rank) {}
}

/// Reader-writer lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    rank: Rank,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock around `value`.
    pub fn new(value: T) -> Self {
        Self {
            rank: None,
            inner: sync::RwLock::new(value),
        }
    }

    /// Creates a lock participating in the debug-only acquisition-order
    /// check: it may only be taken while every ranked lock held by the
    /// thread has a strictly smaller rank.
    pub fn with_rank(value: T, rank: u32, name: &'static str) -> Self {
        Self {
            rank: Some((rank, name)),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        held::acquire(self.rank);
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
            rank: self.rank,
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        held::acquire(self.rank);
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
            rank: self.rank,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
    rank: Rank,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        held::release(self.rank);
    }
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
    rank: Rank,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        held::release(self.rank);
    }
}

/// Mutex with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    rank: Rank,
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex around `value`.
    pub fn new(value: T) -> Self {
        Self {
            rank: None,
            inner: sync::Mutex::new(value),
        }
    }

    /// Creates a mutex participating in the debug-only acquisition-order
    /// check — see [`RwLock::with_rank`].
    pub fn with_rank(value: T, rank: u32, name: &'static str) -> Self {
        Self {
            rank: Some((rank, name)),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        held::acquire(self.rank);
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
            rank: self.rank,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
    rank: Rank,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        held::release(self.rank);
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "rank check is debug-only")]
    fn ascending_ranks_pass() {
        let a = Mutex::with_rank(1, 10, "a");
        let b = RwLock::with_rank(2, 20, "b");
        let ga = a.lock();
        let gb = b.read();
        assert_eq!(*ga + *gb, 3);
        drop(gb);
        drop(ga);
        // Out-of-order drop is fine too; only acquisition is ordered.
        let ga = a.lock();
        let gb = b.write();
        drop(ga);
        drop(gb);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "rank check is debug-only")]
    fn descending_ranks_panic() {
        let result = std::thread::spawn(|| {
            let a = Mutex::with_rank(1, 10, "a");
            let b = Mutex::with_rank(2, 20, "b");
            let _gb = b.lock();
            let _ga = a.lock(); // rank 10 after rank 20: must panic.
        })
        .join();
        let err = result.expect_err("inverted acquisition must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lock-order violation"), "{msg}");
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "rank check is debug-only")]
    fn equal_rank_reacquisition_panics() {
        let result = std::thread::spawn(|| {
            let a = RwLock::with_rank(1, 10, "a");
            let _g1 = a.read();
            let _g2 = a.read(); // same rank: re-entrancy is flagged.
        })
        .join();
        assert!(result.is_err());
    }

    #[test]
    fn unranked_locks_are_never_tracked() {
        let a = Mutex::new(1);
        let b = Mutex::new(2);
        let _gb = b.lock();
        let _ga = a.lock(); // No ranks, no ordering constraint.
    }
}
