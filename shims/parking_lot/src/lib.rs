//! Offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API
//! (guards are returned directly, poisoning is unwrapped away — matching
//! parking_lot's no-poisoning semantics for code that never leaks a
//! panicking critical section).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock around `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutex with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex around `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }
}
