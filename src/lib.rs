//! # detector
//!
//! A from-scratch Rust reproduction of **deTector** (Peng et al., USENIX
//! ATC 2017): a topology-aware monitoring system that detects *and*
//! localizes packet-loss failures in data center networks from end-to-end
//! probes alone.
//!
//! This facade crate re-exports the workspace:
//!
//! * `core` ([`detector_core`]) — the paper's algorithms: PMC probe-matrix
//!   construction (§4) and PLL loss localization (§5) with the Tomo /
//!   SCORE / OMP baselines, all behind the unified
//!   [`Localizer`](detector_core::pll::Localizer) trait;
//! * `topology` ([`detector_topology`]) — Fattree, VL2 and BCube generators
//!   with ECMP path sets and symmetry-aware candidate providers;
//! * `simnet` ([`detector_simnet`]) — the deterministic packet-level fabric
//!   simulator standing in for the paper's SDN testbed;
//! * `system` ([`detector_system`]) — the deTector runtime behind the owned
//!   [`Detector`](detector_system::Detector) handle: controller, pingers,
//!   responders, diagnoser, watchdog, driven against any
//!   [`DataPlane`](detector_system::DataPlane) and observable through
//!   typed [`RuntimeEvent`](detector_system::RuntimeEvent) sinks;
//! * `baselines` ([`detector_baselines`]) — Pingmesh, NetNORAD, Netbouncer
//!   and fbtracert emulations, whose inference stages implement the same
//!   `Localizer` trait.
//!
//! # The runtime in five lines
//!
//! ```
//! use detector::prelude::*;
//! use std::sync::Arc;
//! use rand::SeedableRng;
//!
//! let ft = Arc::new(Fattree::new(4).unwrap());
//! let mut run = Detector::new(ft.clone(), SystemConfig::default()).unwrap();
//! let mut fabric = Fabric::quiet(ft.as_ref());
//! fabric.set_discipline_both(ft.ac_link(1, 0, 1), LossDiscipline::Full);
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let window = run.step(&fabric, &mut rng);
//! assert!(window.diagnosis.suspect_links().contains(&ft.ac_link(1, 0, 1)));
//! ```
//!
//! (Migrating from the old borrow-bound `MonitorRun<'a>`? See the
//! [`detector_system`] crate docs — `run_window` became
//! [`Detector::step`](detector_system::Detector::step) and topologies are
//! now shared via `Arc` instead of leaked references.)
//!
//! # Reacting to topology churn
//!
//! The topology is *live*: drains, repairs and expansions arrive as
//! [`TopologyEvent`](detector_topology::TopologyEvent)s through
//! [`Detector::apply`](detector_system::Detector::apply), which patches
//! the probe plan incrementally — only the PMC subproblems the change
//! touches are re-solved — and emits a `PlanUpdated` runtime event:
//!
//! ```
//! use detector::prelude::*;
//! use std::sync::Arc;
//!
//! let ft = Arc::new(Fattree::new(4).unwrap());
//! let mut run = Detector::new(ft.clone(), SystemConfig::default()).unwrap();
//! let dead = ft.ea_link(0, 0, 0);
//! let update = run.apply(&TopologyEvent::LinkDown { link: dead }).unwrap();
//! assert_eq!((update.epoch, update.links_changed), (1, 1));
//! // Probes route around the drained link until it comes back.
//! assert!(run.matrix().uncoverable.contains(&dead));
//! run.apply(&TopologyEvent::LinkUp { link: dead }).unwrap();
//! assert!(run.matrix().paths_through(dead).count() > 0);
//! ```
//!
//! # The algorithms without the runtime
//!
//! ```
//! use detector::prelude::*;
//! use rand::SeedableRng;
//!
//! // Build the paper's testbed topology and a (3, 1) probe matrix.
//! let ft = Fattree::new(4).unwrap();
//! let matrix = construct_symmetric(&ft, &PmcConfig::new(3, 1)).unwrap();
//!
//! // Fail a link, probe, localize through the Localizer trait.
//! let mut fabric = Fabric::quiet(&ft);
//! let bad = ft.ac_link(1, 0, 1);
//! fabric.set_discipline_both(bad, LossDiscipline::Full);
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let mut observations = Vec::new();
//! for path in &matrix.paths {
//!     let route = ft.graph().route_from_nodes(path.nodes().to_vec()).unwrap();
//!     let mut lost = 0;
//!     for i in 0..20u16 {
//!         let flow = FlowKey::udp(route.nodes[0].0, route.nodes.last().unwrap().0, 33000 + i, 53533);
//!         if !fabric.round_trip(&route, flow, &mut rng).success {
//!             lost += 1;
//!         }
//!     }
//!     observations.push(PathObservation::new(path.id, 20, lost));
//! }
//! let pll: Box<dyn Localizer> = Box::new(PllLocalizer::default());
//! let diagnosis = pll.localize(&matrix, &observations);
//! assert_eq!(diagnosis.suspect_links(), vec![bad]);
//! ```

pub use detector_baselines as baselines;
pub use detector_core as core;
pub use detector_ingest as ingest;
pub use detector_simnet as simnet;
pub use detector_system as system;
pub use detector_topology as topology;

/// Convenient glob-import surface for examples and quick experiments.
pub mod prelude {
    pub use detector_agent::{
        flaky_loopback, loopback, AgentExit, ControlTransport, DistAction, DistError, DistOutcome,
        DistScript, DistributedDetector, Frame, FrameError, LoopbackEnd, PingerAgent, TcpTransport,
        Transport, TransportError, MAX_FRAME,
    };
    pub use detector_baselines::{
        fbtracert_localize, fbtracert_sweep, netbouncer_localize, netbouncer_sweep, BaselineConfig,
        BaselineSystem, FbtracertLocalizer, NetbouncerLocalizer, SweepResult,
    };
    pub use detector_core::json::{Json, ToJson};
    pub use detector_core::pll::{
        evaluate_diagnosis, localize, localize_omp, localize_score, localize_tomo, Diagnosis,
        LocalizationMetrics, Localizer, OmpLocalizer, PllConfig, PllLocalizer, ScoreLocalizer,
        TomoLocalizer,
    };
    pub use detector_core::pmc::{
        construct, max_identifiability, min_coverage, verify, PmcConfig, ProbeMatrix,
    };
    pub use detector_core::types::{
        LinkId, NodeId, PathId, PathIdRange, PathObservation, ProbePath,
    };
    pub use detector_ingest::{prefilter, IngestConfig, IngestPlane, SealedWindow, SpaceSaving};
    pub use detector_simnet::{
        partition_hosts, ChurnSchedule, Fabric, FailureGenerator, FailureScenario, FlowKey,
        HostGroups, LossDiscipline,
    };
    pub use detector_system::{
        BuildError, CollectingSink, ConfigError, DataPlane, Detector, DetectorBuilder, EventSink,
        HarnessStats, HostClock, IdHeadroom, JsonLinesSink, LossShim, ManualProbeClock, Pinglist,
        PipelineConfig, PipelineError, PlanUpdate, ProbeClock, ProbeOutcome, ProbePlan, ProbeTag,
        ReplanStats, RetryPolicy, RuntimeEvent, Script, ScriptAction, SharedTopology, SystemConfig,
        UdpConfig, UdpDataPlane, UdpHarness, UdpStats, WindowResult,
    };
    pub use detector_topology::{
        construct_symmetric, BCube, DcnTopology, Fattree, Route, TopologyDelta, TopologyEvent,
        TopologyView, Vl2,
    };
}
