//! # detector
//!
//! A from-scratch Rust reproduction of **deTector** (Peng et al., USENIX
//! ATC 2017): a topology-aware monitoring system that detects *and*
//! localizes packet-loss failures in data center networks from end-to-end
//! probes alone.
//!
//! This facade crate re-exports the workspace:
//!
//! * `core` ([`detector_core`]) — the paper's algorithms: PMC probe-matrix
//!   construction (§4) and PLL loss localization (§5) with the Tomo /
//!   SCORE / OMP baselines;
//! * `topology` ([`detector_topology`]) — Fattree, VL2 and BCube generators
//!   with ECMP path sets and symmetry-aware candidate providers;
//! * `simnet` ([`detector_simnet`]) — the deterministic packet-level fabric
//!   simulator standing in for the paper's SDN testbed;
//! * `system` ([`detector_system`]) — the deTector runtime: controller,
//!   pingers, responders, diagnoser, watchdog;
//! * `baselines` ([`detector_baselines`]) — Pingmesh, NetNORAD, Netbouncer
//!   and fbtracert emulations.
//!
//! # Examples
//!
//! ```
//! use detector::prelude::*;
//! use rand::SeedableRng;
//!
//! // Build the paper's testbed topology and a (3,1) probe matrix.
//! let ft = Fattree::new(4).unwrap();
//! let matrix = construct_symmetric(&ft, &PmcConfig::new(3, 1)).unwrap();
//!
//! // Fail a link, probe, localize.
//! let mut fabric = Fabric::quiet(&ft);
//! let bad = ft.ac_link(1, 0, 1);
//! fabric.set_discipline_both(bad, LossDiscipline::Full);
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let mut observations = Vec::new();
//! for path in &matrix.paths {
//!     let route = ft.graph().route_from_nodes(path.nodes().to_vec()).unwrap();
//!     let mut lost = 0;
//!     for i in 0..20u16 {
//!         let flow = FlowKey::udp(route.nodes[0].0, route.nodes.last().unwrap().0, 33000 + i, 53533);
//!         if !fabric.round_trip(&route, flow, &mut rng).success {
//!             lost += 1;
//!         }
//!     }
//!     observations.push(PathObservation::new(path.id, 20, lost));
//! }
//! let diagnosis = localize(&matrix, &observations, &PllConfig::default());
//! assert_eq!(diagnosis.suspect_links(), vec![bad]);
//! ```

pub use detector_baselines as baselines;
pub use detector_core as core;
pub use detector_simnet as simnet;
pub use detector_system as system;
pub use detector_topology as topology;

/// Convenient glob-import surface for examples and quick experiments.
pub mod prelude {
    pub use detector_baselines::{
        fbtracert_localize, netbouncer_localize, BaselineConfig, BaselineSystem,
    };
    pub use detector_core::pll::{
        evaluate_diagnosis, localize, localize_omp, localize_score, localize_tomo, Diagnosis,
        LocalizationMetrics, PllConfig,
    };
    pub use detector_core::pmc::{
        construct, max_identifiability, min_coverage, verify, PmcConfig, ProbeMatrix,
    };
    pub use detector_core::types::{LinkId, NodeId, PathId, PathObservation, ProbePath};
    pub use detector_simnet::{Fabric, FailureGenerator, FailureScenario, FlowKey, LossDiscipline};
    pub use detector_system::{MonitorRun, SystemConfig, WindowResult};
    pub use detector_topology::{construct_symmetric, BCube, DcnTopology, Fattree, Route, Vl2};
}
