//! Pipelined scheduler drill: the same churny monitoring campaign run
//! twice on Fattree(8) — once through sequential `step()`, once through
//! `run_pipelined` — asserting the two produce *identical* per-window
//! diagnoses and event streams, and reporting the wall-clock
//! windows-per-second of each.
//!
//! The scenario packs everything the scheduler must get right at once:
//! a real partial failure to localize, a link drain + repair re-planning
//! mid-run, a pinger dying and recovering, and controller cycle
//! refreshes landing inside the run.
//!
//! Run with: `cargo run --release --example pipelined_run`

use std::sync::Arc;
use std::time::Instant;

use detector::prelude::*;
use detector::system::{PipelineConfig, Script};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let ft = Arc::new(Fattree::new(8).expect("valid radix"));
    let faulty = ft.ac_link(5, 1, 2);
    let drained = ft.ea_link(2, 1, 0);
    let sick_pinger = ft.server(0, 0, 0);
    let windows = 12;

    // Refreshes at windows 4 and 8 (cycle_s = 120 at 30 s windows).
    let cfg = SystemConfig {
        cycle_s: 120,
        ..SystemConfig::default()
    };
    let script = Script::new()
        .topology(2, TopologyEvent::LinkDown { link: drained })
        .mark_unhealthy(3, sick_pinger)
        .topology(6, TopologyEvent::LinkUp { link: drained })
        .mark_healthy(7, sick_pinger);

    // One real partial failure to localize. The drained link stays
    // physically healthy (an administrative maintenance drain): the
    // re-plan keeps probes off it while it is drained, and it must never
    // be blamed at any point of the run.
    let mut fabric = Fabric::new(ft.as_ref(), 0xF00D);
    fabric.set_discipline_both(faulty, LossDiscipline::RandomPartial { rate: 0.4 });

    println!(
        "Fattree(8), {windows} windows, {} probe paths; faulty link {faulty}, drained link {drained}, sick pinger {sick_pinger}",
        Detector::new(ft.clone() as SharedTopology, cfg.clone())
            .expect("boot")
            .matrix()
            .num_paths(),
    );

    // Sequential oracle.
    let seq_sink = CollectingSink::new();
    let mut seq = Detector::builder(ft.clone() as SharedTopology)
        .config(cfg.clone())
        .sink(Box::new(seq_sink.clone()))
        .build()
        .expect("boot sequential");
    let mut rng = SmallRng::seed_from_u64(0xF00D);
    let t0 = Instant::now();
    let seq_results = seq
        .run_scripted(&fabric, windows, &script, &mut rng)
        .expect("sequential run");
    let seq_elapsed = t0.elapsed();

    // Pipelined runtime.
    let pipeline = PipelineConfig::default();
    let pipe_sink = CollectingSink::new();
    let mut pipe = Detector::builder(ft.clone() as SharedTopology)
        .config(cfg)
        .sink(Box::new(pipe_sink.clone()))
        .build()
        .expect("boot pipelined");
    let mut rng = SmallRng::seed_from_u64(0xF00D);
    let t0 = Instant::now();
    let pipe_results = pipe
        .run_pipelined(&fabric, windows, &script, &pipeline, &mut rng)
        .expect("pipelined run");
    let pipe_elapsed = t0.elapsed();

    // The pipelined run is bit-equivalent to the oracle.
    assert_eq!(seq_results, pipe_results, "window results diverged");
    let normalize = |events: Vec<RuntimeEvent>| -> Vec<RuntimeEvent> {
        events.iter().map(RuntimeEvent::normalized).collect()
    };
    assert_eq!(
        normalize(seq_sink.events()),
        normalize(pipe_sink.events()),
        "event streams diverged"
    );

    // And the campaign itself behaved: the real failure is localized
    // every window, the drained link is never blamed.
    for w in &pipe_results {
        let suspects = w.diagnosis.suspect_links();
        assert!(
            suspects.contains(&faulty),
            "window {}: faulty link missed, suspects {suspects:?}",
            w.window
        );
        assert!(
            !suspects.contains(&drained),
            "window {}: drained link blamed, suspects {suspects:?}",
            w.window
        );
        println!(
            "window {:>2}: probes {:>6} | observations {:>4} | suspects {:?}",
            w.window, w.probes_sent, w.num_observations, suspects
        );
    }

    let wps = |elapsed: std::time::Duration| windows as f64 / elapsed.as_secs_f64();
    println!(
        "\nsequential: {:>8.2?} total, {:>6.1} windows/s",
        seq_elapsed,
        wps(seq_elapsed)
    );
    println!(
        "pipelined:  {:>8.2?} total, {:>6.1} windows/s ({} probe workers, depth {}, {:.2}x)",
        pipe_elapsed,
        wps(pipe_elapsed),
        pipeline.probe_workers,
        pipeline.depth,
        seq_elapsed.as_secs_f64() / pipe_elapsed.as_secs_f64(),
    );
    println!("\nOK: pipelined run identical to the sequential oracle.");
}
