//! Quickstart: build a Fattree, construct a probe matrix, fail a link,
//! probe, localize — the Fig. 1 scenario of the paper in ~40 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use detector::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // An 8-ary Fattree: 80 switches, 128 servers, 256 inter-switch links.
    let ft = Fattree::new(8).expect("valid radix");
    println!(
        "topology: {} — {} switches, {} servers, {} probe links",
        ft.name(),
        ft.graph().num_switches(),
        ft.graph().num_servers(),
        ft.probe_links()
    );

    // A probe matrix with 1-coverage and 1-identifiability, via the
    // symmetry-reduced PMC (Observation 3, §4.3).
    let matrix = construct_symmetric(&ft, &PmcConfig::identifiable(1)).expect("PMC");
    println!(
        "probe matrix: {} paths selected out of {} original ECMP paths ({:.4}%)",
        matrix.num_paths(),
        ft.original_path_count(),
        100.0 * matrix.num_paths() as f64 / ft.original_path_count() as f64
    );
    println!(
        "verified: coverage >= {}, identifiability = {}",
        min_coverage(&matrix),
        max_identifiability(&matrix, 2)
    );

    // Fig. 1: fail "link AB" — an aggregation-to-core link — and find it
    // by sending probes between ToRs.
    let bad = ft.ac_link(0, 1, 0);
    let mut fabric = Fabric::new(&ft, 42); // Background noise included.
    fabric.set_discipline_both(bad, LossDiscipline::Full);

    let mut rng = SmallRng::seed_from_u64(7);
    let mut observations = Vec::new();
    for path in &matrix.paths {
        let route = ft
            .graph()
            .route_from_nodes(path.nodes().to_vec())
            .expect("matrix paths are routable");
        let (mut sent, mut lost) = (0u64, 0u64);
        for i in 0..20u16 {
            let flow = FlowKey::udp(
                route.nodes[0].0,
                route.nodes.last().unwrap().0,
                33_000 + i,
                53_533,
            );
            sent += 1;
            if !fabric.round_trip(&route, flow, &mut rng).success {
                lost += 1;
            }
        }
        observations.push(PathObservation::new(path.id, sent, lost));
    }

    // 20 probes per path with no loss-confirmation re-probes: treat a
    // single lost packet as background noise (the runtime's pinger does
    // this with confirmation probes instead, §3.1).
    let pll: Box<dyn Localizer> = Box::new(PllLocalizer::new(PllConfig {
        min_loss_count: 2,
        ..PllConfig::default()
    }));
    let diagnosis = pll.localize(&matrix, &observations);
    println!("\ndiagnosis:");
    for s in &diagnosis.suspects {
        println!(
            "  link {} — estimated loss rate {:.2}, hit ratio {:.2}, explained {} paths",
            s.link, s.estimated_loss_rate, s.hit_ratio, s.explained_paths
        );
    }
    assert_eq!(diagnosis.suspect_links(), vec![bad]);
    println!("\ninjected failure {bad} correctly localized ✔");
}
