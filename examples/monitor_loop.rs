//! A full monitoring campaign: the deTector runtime (controller, pingers,
//! diagnoser) watching a simulated Fattree for 10 minutes while failures
//! come and go; prints the detection timeline.
//!
//! Run with: `cargo run --release --example monitor_loop`

use detector::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let ft = Fattree::new(4).expect("valid radix");
    let mut run = MonitorRun::new(&ft, SystemConfig::default()).expect("boot");
    println!(
        "deTector up: {} probe paths, {} scheduled probes per 30s window\n",
        run.matrix().num_paths(),
        run.scheduled_probes_per_window()
    );

    let mut rng = SmallRng::seed_from_u64(2024);
    let gen = FailureGenerator::links_only().with_min_rate(0.1);

    // Failure schedule: a failure appears at minute 2 and clears at
    // minute 5; another (2 links) appears at minute 7.
    let f1 = gen.sample(&ft, 1, &mut rng);
    let f2 = gen.sample(&ft, 2, &mut rng);

    for minute in 0..10u64 {
        let mut fabric = Fabric::new(&ft, 9_000 + minute);
        let active: Vec<&FailureScenario> = match minute {
            2..=4 => vec![&f1],
            7..=9 => vec![&f2],
            _ => vec![],
        };
        let mut truth = Vec::new();
        for s in &active {
            fabric.apply_scenario(s);
            truth.extend(s.ground_truth(&ft));
        }
        truth.sort_unstable();
        truth.dedup();

        for _ in 0..2 {
            let w = run.run_window(&fabric, &mut rng);
            let suspects = w.diagnosis.suspect_links();
            let m = evaluate_diagnosis(&suspects, &truth);
            println!(
                "t={:>4}s window {:>2}: {:>5} probes, suspects {:?} (tp {} fp {} fn {})",
                w.start_s,
                w.window,
                w.probes_sent,
                suspects,
                m.true_positives,
                m.false_positives,
                m.false_negatives
            );
        }
    }
    println!("\ncampaign finished at t={}s", run.now_s());
}
