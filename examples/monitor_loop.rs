//! A full monitoring campaign: the deTector runtime (controller, pingers,
//! diagnoser) watching a simulated Fattree for 10 minutes while failures
//! come and go; prints the detection timeline and, at the end, a summary
//! of the runtime's event stream (the new `EventSink` seam).
//!
//! Run with: `cargo run --release --example monitor_loop`

use std::sync::Arc;

use detector::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let ft = Arc::new(Fattree::new(4).expect("valid radix"));
    // The collecting sink observes every RuntimeEvent; clone it before
    // registration to keep a reading handle.
    let collector = CollectingSink::new();
    // A 5-minute matrix-refresh cycle so the 10-minute campaign crosses
    // a cycle boundary and the event stream shows a CycleRefreshed.
    let cfg = SystemConfig {
        cycle_s: 300,
        ..SystemConfig::default()
    };
    let mut run = Detector::builder(ft.clone())
        .config(cfg)
        .sink(Box::new(collector.clone()))
        .build()
        .expect("boot");
    println!(
        "deTector up: {} probe paths, {} scheduled probes per 30s window\n",
        run.matrix().num_paths(),
        run.scheduled_probes_per_window()
    );

    let mut rng = SmallRng::seed_from_u64(2024);
    let gen = FailureGenerator::links_only().with_min_rate(0.1);

    // Failure schedule: a failure appears at minute 2 and clears at
    // minute 5; another (2 links) appears at minute 7.
    let f1 = gen.sample(ft.as_ref(), 1, &mut rng);
    let f2 = gen.sample(ft.as_ref(), 2, &mut rng);

    for minute in 0..10u64 {
        let mut fabric = Fabric::new(ft.as_ref(), 9_000 + minute);
        let active: Vec<&FailureScenario> = match minute {
            2..=4 => vec![&f1],
            7..=9 => vec![&f2],
            _ => vec![],
        };
        let mut truth = Vec::new();
        for s in &active {
            fabric.apply_scenario(s);
            truth.extend(s.ground_truth(ft.as_ref()));
        }
        truth.sort_unstable();
        truth.dedup();

        for _ in 0..2 {
            let w = run.step(&fabric, &mut rng);
            let suspects = w.diagnosis.suspect_links();
            let m = evaluate_diagnosis(&suspects, &truth);
            println!(
                "t={:>4}s window {:>2}: {:>5} probes, suspects {:?} (tp {} fp {} fn {})",
                w.start_s,
                w.window,
                w.probes_sent,
                suspects,
                m.true_positives,
                m.false_positives,
                m.false_negatives
            );
        }
    }
    println!("\ncampaign finished at t={}s", run.now_s());

    // What the event stream saw: one bracketed window per step, a
    // CycleRefreshed on the 300 s boundary, one report per pinger.
    let events = collector.events();
    let count = |pred: fn(&RuntimeEvent) -> bool| events.iter().filter(|e| pred(e)).count();
    println!(
        "event stream: {} events — {} windows, {} reports, {} cycle refreshes",
        events.len(),
        count(|e| matches!(e, RuntimeEvent::WindowStarted { .. })),
        count(|e| matches!(e, RuntimeEvent::ReportIngested { .. })),
        count(|e| matches!(e, RuntimeEvent::CycleRefreshed { .. })),
    );
    if let Some(RuntimeEvent::DiagnosisReady(last)) = events.last() {
        println!("last record as JSON-lines: {}", last.to_json());
    }
}
