//! Real-packet drill: a monitoring campaign on Fattree(8) where every
//! probe is an actual UDP datagram through the kernel loopback stack.
//!
//! An in-process [`UdpHarness`] stands in for the responder fleet: each
//! probe is encoded to the §6.1 wire format, sent over a real socket,
//! echoed by a `Responder` thread, matched back by sequence number and
//! timed — with kernel `SO_TIMESTAMP` receive stamps when the platform
//! grants them. A deterministic [`LossShim`] injects path loss at the
//! harness boundary so the diagnoser has something to localize, and the
//! campaign is run both sequentially and pipelined to show the
//! equivalence invariant holding over real sockets.
//!
//! Run with: `cargo run --release --example udp_run`

use std::sync::Arc;
use std::time::Instant;

use detector::prelude::*;
use detector::system::{PipelineConfig, Script};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let ft = Arc::new(Fattree::new(8).expect("valid radix"));
    let windows = 8;
    let cfg = SystemConfig {
        cycle_s: 120,
        probe_rate_pps: 0.2, // 6 probes per pinger-window: loopback-friendly.
        ..SystemConfig::default()
    };

    // The responder fleet: real echo sockets on 127.0.0.1 served by
    // stateless Responder threads sharing one measurement clock.
    let clock: Arc<dyn ProbeClock> = Arc::new(HostClock::new());
    let harness = UdpHarness::spawn(8, cfg.dport, clock).expect("spawn responders");
    // 15% deterministic path loss injected at the send boundary.
    let shim = LossShim::new(0xD07EC, 150);
    let plane = harness
        .dataplane(&UdpConfig::default(), Some(shim))
        .expect("bind probe sockets");

    println!(
        "Fattree(8), {windows} windows over UDP loopback: {} responders on {:?}..., kernel timestamps: {}",
        harness.addrs().len(),
        harness.addrs()[0],
        plane.kernel_timestamps(),
    );

    let script = Script::new()
        .topology(
            2,
            TopologyEvent::LinkDown {
                link: ft.ea_link(2, 1, 0),
            },
        )
        .topology(
            5,
            TopologyEvent::LinkUp {
                link: ft.ea_link(2, 1, 0),
            },
        );

    // Sequential oracle over the wire.
    let seq_sink = CollectingSink::new();
    let mut seq = Detector::builder(ft.clone() as SharedTopology)
        .config(cfg.clone())
        .sink(Box::new(seq_sink.clone()))
        .build()
        .expect("boot sequential");
    let mut rng = SmallRng::seed_from_u64(0xD07EC);
    let t0 = Instant::now();
    let seq_results = seq
        .run_scripted(&plane, windows, &script, &mut rng)
        .expect("sequential run");
    let seq_elapsed = t0.elapsed();

    // Pipelined over the same plane: probe workers hide wire wait.
    let pipeline = PipelineConfig::default();
    let pipe_sink = CollectingSink::new();
    let mut pipe = Detector::builder(ft.clone() as SharedTopology)
        .config(cfg)
        .sink(Box::new(pipe_sink.clone()))
        .build()
        .expect("boot pipelined");
    let mut rng = SmallRng::seed_from_u64(0xD07EC);
    let t0 = Instant::now();
    let pipe_results = pipe
        .run_pipelined(&plane, windows, &script, &pipeline, &mut rng)
        .expect("pipelined run");
    let pipe_elapsed = t0.elapsed();

    assert_eq!(
        seq_results, pipe_results,
        "window results diverged over real sockets"
    );
    let normalize = |events: Vec<RuntimeEvent>| -> Vec<RuntimeEvent> {
        events.iter().map(RuntimeEvent::normalized).collect()
    };
    assert_eq!(
        normalize(seq_sink.events()),
        normalize(pipe_sink.events()),
        "event streams diverged over real sockets"
    );

    for w in &pipe_results {
        println!(
            "window {:>2}: probes {:>6} | observations {:>4} | suspects {:?}",
            w.window,
            w.probes_sent,
            w.num_observations,
            w.diagnosis.suspect_links()
        );
    }

    let stats = plane.stats();
    println!(
        "\nwire: {} sent, {} delivered, {} shim-dropped, {} retries, {} timeouts, {} late echoes",
        stats.sent,
        stats.delivered,
        stats.shim_dropped,
        stats.retries,
        stats.timeouts,
        stats.late_echoes,
    );
    println!(
        "stamps: {} kernel, {} monotonic-fallback | responders: {} echoed, {} stray, {} corrupt",
        stats.kernel_stamped,
        stats.mono_stamped,
        harness.stats().echoed,
        harness.stats().stray,
        harness.stats().corrupt,
    );
    let wps = |elapsed: std::time::Duration| windows as f64 / elapsed.as_secs_f64();
    println!(
        "sequential: {:>8.2?} total, {:>6.1} windows/s | pipelined: {:>8.2?} total, {:>6.1} windows/s ({:.2}x)",
        seq_elapsed,
        wps(seq_elapsed),
        pipe_elapsed,
        wps(pipe_elapsed),
        seq_elapsed.as_secs_f64() / pipe_elapsed.as_secs_f64(),
    );
    assert!(stats.delivered > 0, "no probe crossed the loopback");
    assert!(stats.shim_dropped > 0, "the loss shim never fired");
    println!("\nOK: pipelined run identical to the sequential oracle over real UDP.");
}
