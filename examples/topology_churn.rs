//! Topology churn drill: a mid-run link drain and recovery on Fattree(8),
//! driven through the live-topology API.
//!
//! A [`ChurnSchedule`] scripts the scenario; per window its due events
//! are mirrored onto the simulated fabric (packets start dropping) and
//! onto the running [`Detector`] via `apply` (the probe plan is patched
//! incrementally — only the PMC subproblem containing the drained link is
//! re-solved, and the recovery restores the cached pristine solution
//! without solving anything). The drill asserts the whole story:
//!
//! 1. before the drain, the fabric is clean and diagnoses are clean;
//! 2. the window where the link dies *without* a re-plan would blame it —
//!    here the re-plan lands first, so probes route around the drain and
//!    diagnoses stay clean while the link is down;
//! 3. after recovery the plan, the probe paths and the diagnoses are
//!    back to the pristine state.
//!
//! Run with: `cargo run --release --example topology_churn`

use std::sync::Arc;

use detector::prelude::*;
use detector::simnet::ChurnSchedule;
use detector::system::TopologyEvent;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let ft = Arc::new(Fattree::new(8).expect("valid radix"));
    let victim = ft.ea_link(2, 1, 0);
    let down_window = 2;
    let up_window = 5;
    let windows = 7;

    let churn = ChurnSchedule::drain_recover(victim, down_window, up_window);

    let collector = CollectingSink::new();
    let mut run = Detector::builder(ft.clone() as SharedTopology)
        .config(SystemConfig::default())
        .sink(Box::new(collector.clone()))
        .build()
        .expect("boot");
    let mut fabric = Fabric::quiet(ft.as_ref());
    let mut rng = SmallRng::seed_from_u64(0xC5A0);

    let pristine_paths = run.matrix().num_paths();
    println!(
        "Fattree(8): {} probe paths over {} links; draining link {victim} before window {down_window}, repairing before window {up_window}",
        pristine_paths,
        ft.probe_links(),
    );

    for w in 0..windows {
        for event in churn.due(w) {
            // Mirror the change onto the fabric (drop behaviour) and the
            // detector (incremental re-plan) in lockstep.
            ChurnSchedule::apply_to_fabric(&mut fabric, event);
            let update = run.apply(event).expect("re-plan");
            println!(
                "  event {:>9} → epoch {} | {} link(s) changed | probes Δ {:+} | re-planned in {} µs ({} cell re-solved, {} restored)",
                match event {
                    TopologyEvent::LinkDown { .. } => "link-down",
                    TopologyEvent::LinkUp { .. } => "link-up",
                    _ => "other",
                },
                update.epoch,
                update.links_changed,
                update.probes_delta,
                update.replan_micros,
                update.stats.cells_resolved,
                update.stats.cells_restored,
            );
        }

        let link_is_down = (down_window..up_window).contains(&w);
        let covered = run.matrix().paths_through(victim).count();
        let result = run.step(&fabric, &mut rng);
        println!(
            "window {w}: probes {:>6} | paths over drained link {:>2} | suspects {:?}",
            result.probes_sent,
            covered,
            result.diagnosis.suspect_links(),
        );

        // The re-plan must keep probes off the drained link (so the
        // drain raises no false alarm) and keep the rest monitored.
        if link_is_down {
            assert_eq!(covered, 0, "probe path crosses the drained link");
            assert!(run.matrix().uncoverable.contains(&victim));
        } else {
            assert!(covered > 0, "repaired link must be probed again");
        }
        assert!(
            result.diagnosis.suspects.is_empty(),
            "drained/recovered fabric must stay clean, got {:?}",
            result.diagnosis.suspect_links()
        );
        assert!(result.probes_sent > 0);
    }

    // Recovery restored the pristine plan exactly.
    assert_eq!(run.matrix().num_paths(), pristine_paths);
    assert_eq!(run.epoch(), 2);

    let plan_updates: Vec<_> = collector
        .events()
        .into_iter()
        .filter(|e| matches!(e, RuntimeEvent::PlanUpdated { .. }))
        .collect();
    assert_eq!(plan_updates.len(), 2);
    println!("\nPlanUpdated records (JSON-lines):");
    for e in &plan_updates {
        println!("  {}", e.to_json());
    }
    println!("\nOK: drain and recovery re-planned incrementally; no false alarms.");
}
