//! Probe-matrix planning across topologies: how many paths do different
//! (α, β) targets cost on Fattree, VL2 and BCube, and what do they buy?
//! A miniature of the paper's Tables 3 and 4 reasoning.
//!
//! Run with: `cargo run --release --example probe_planning`

use detector::prelude::*;

fn plan(topo: &dyn DcnTopology) {
    println!(
        "{} — {} probe links, {} original ECMP paths",
        topo.name(),
        topo.probe_links(),
        topo.original_path_count()
    );
    for (a, b) in [(1u32, 0u32), (2, 0), (1, 1), (1, 2)] {
        match construct_symmetric(topo, &PmcConfig::new(a, b)) {
            Ok(m) => {
                let ident = max_identifiability(&m, 2);
                println!(
                    "  ({a},{b}): {:>6} paths | verified coverage {} identifiability {}{}",
                    m.num_paths(),
                    min_coverage(&m),
                    ident,
                    if m.achieved.targets_met {
                        ""
                    } else {
                        "  (targets not attainable)"
                    },
                );
            }
            Err(e) => println!("  ({a},{b}): failed: {e}"),
        }
    }
    println!();
}

fn main() {
    println!("probe planning: selected paths per (alpha, beta) target\n");
    plan(&Fattree::new(8).expect("fattree"));
    plan(&Vl2::new(8, 6, 4).expect("vl2"));
    plan(&BCube::new(4, 2).expect("bcube"));
    println!("takeaway (paper §6.4): identifiability is a much better investment");
    println!("than coverage — a (1,1) matrix localizes failures a (3,0) matrix");
    println!("cannot, with fewer paths.");
}
