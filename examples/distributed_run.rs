//! Distributed control-plane drill: a churny monitoring campaign on
//! Fattree(8) run through the wire-protocol agent tier — a controller
//! and four `PingerAgent`s talking length-prefixed frames over loopback
//! transports — asserting the distributed run is *identical* to the
//! single-process `run_scripted` oracle, and reporting the wire-byte
//! accounting the per-entry diff protocol is built to minimize.
//!
//! The scenario packs everything the agent tier must get right at once:
//! a real partial failure to localize, a link drain + repair shipping
//! per-entry pinglist diffs mid-run, one agent crashing and
//! reconnecting (its racks degrade to `PingerUnhealthy` and recover), a
//! single pinger marked sick and healed, and controller cycle refreshes
//! landing inside the run.
//!
//! Run with: `cargo run --release --example distributed_run`

use std::sync::Arc;

use detector::prelude::*;

use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let ft = Arc::new(Fattree::new(8).expect("valid radix"));
    let faulty = ft.ac_link(5, 1, 2);
    let drained = ft.ea_link(2, 1, 0);
    let sick_pinger = ft.server(0, 0, 0);
    let agents = 4;
    let windows = 12;

    // Refreshes at windows 4 and 8 (cycle_s = 120 at 30 s windows).
    // `stable_patch` is the distributed tier's production setting: cell
    // re-solves are seeded with the surviving previous solution, so a
    // delta ships per-entry diffs instead of reshuffled whole lists.
    let mut cfg = SystemConfig {
        cycle_s: 120,
        ..SystemConfig::default()
    };
    cfg.pmc.stable_patch = true;

    let script = DistScript::new()
        .at(
            2,
            DistAction::Topology(TopologyEvent::LinkDown { link: drained }),
        )
        .at(3, DistAction::AgentDown(1))
        .at(5, DistAction::AgentUp(1))
        .at(
            6,
            DistAction::Topology(TopologyEvent::LinkUp { link: drained }),
        )
        .at(8, DistAction::MarkUnhealthy(sick_pinger))
        .at(9, DistAction::MarkHealthy(sick_pinger));

    // One real partial failure to localize. The drained link stays
    // physically healthy (an administrative maintenance drain): the
    // re-plan keeps probes off it while it is drained, and it must never
    // be blamed at any point of the run.
    let mut fabric = Fabric::new(ft.as_ref(), 0xF00D);
    fabric.set_discipline_both(faulty, LossDiscipline::RandomPartial { rate: 0.4 });

    // Distributed run: controller + agent fleet over loopback frames.
    let dist_sink = CollectingSink::new();
    let mut dist = DistributedDetector::new(ft.clone() as SharedTopology, cfg.clone(), agents)
        .expect("boot distributed");
    dist.add_sink(Box::new(dist_sink.clone()));
    let mut rng = SmallRng::seed_from_u64(0xF00D);
    let outcome = dist
        .run_distributed(&fabric, windows, &script, &mut rng)
        .expect("distributed run");

    println!(
        "Fattree(8), {agents} agents, {windows} windows, {} probe paths; \
         faulty link {faulty}, drained link {drained}, sick pinger {sick_pinger}",
        dist.matrix().num_paths(),
    );

    // Sequential oracle: the same campaign with the agent crash expanded
    // to per-rack health marks by `DistScript::oracle`.
    let seq_sink = CollectingSink::new();
    let mut seq = Detector::builder(ft.clone() as SharedTopology)
        .config(cfg)
        .sink(Box::new(seq_sink.clone()))
        .build()
        .expect("boot oracle");
    let mut rng = SmallRng::seed_from_u64(0xF00D);
    let oracle = script.oracle(dist.groups());
    let seq_results = seq
        .run_scripted(&fabric, windows, &oracle, &mut rng)
        .expect("sequential oracle");

    // The distributed run is bit-equivalent to the oracle.
    assert_eq!(seq_results, outcome.results, "window results diverged");
    let normalize = |events: Vec<RuntimeEvent>| -> Vec<RuntimeEvent> {
        events.iter().map(RuntimeEvent::normalized).collect()
    };
    assert_eq!(
        normalize(seq_sink.events()),
        normalize(dist_sink.events()),
        "event streams diverged"
    );
    assert_eq!(seq.matrix().paths, dist.matrix().paths);

    // And the campaign itself behaved: the real failure is localized
    // every window, the drained link is never blamed.
    for w in &outcome.results {
        let suspects = w.diagnosis.suspect_links();
        assert!(
            suspects.contains(&faulty),
            "window {}: faulty link missed, suspects {suspects:?}",
            w.window
        );
        assert!(
            !suspects.contains(&drained),
            "window {}: drained link blamed, suspects {suspects:?}",
            w.window
        );
        println!(
            "window {:>2}: probes {:>6} | observations {:>4} | suspects {:?}",
            w.window, w.probes_sent, w.num_observations, suspects
        );
    }

    // Wire accounting. Dispatch bytes (pinglist material) are the
    // quantity the per-entry diff protocol minimizes: after the initial
    // sync they grow with the *delta*, not the fleet.
    assert!(outcome.dispatch_bytes > 0, "no pinglists ever shipped");
    assert!(
        outcome.control_bytes >= outcome.dispatch_bytes,
        "dispatch is part of the control stream"
    );
    println!(
        "\nwire bytes: dispatch {:>8} (pinglist sync + per-entry diffs)",
        outcome.dispatch_bytes
    );
    println!(
        "            control  {:>8} (dispatch + windows + heartbeats)",
        outcome.control_bytes
    );
    println!(
        "            reports  {:>8} (hellos + observations + acks)",
        outcome.report_bytes
    );
    println!("\nOK: distributed run identical to the sequential oracle.");
}
