//! Failure drill: exercise all three loss types of §6.2 (full,
//! deterministic partial, random partial) plus a switch-down and a sick
//! pinger, and show how deTector handles each.
//!
//! Run with: `cargo run --release --example failure_drill`

use std::sync::Arc;

use detector::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn drill(name: &str, ft: &Fattree, run: &mut Detector, fabric: &Fabric<'_>, truth: &[LinkId]) {
    let mut rng = SmallRng::seed_from_u64(0xD311);
    let w = run.step(fabric, &mut rng);
    let suspects = w.diagnosis.suspect_links();
    // §7: classify the loss pattern to narrow the diagnosis scope.
    let class = suspects
        .first()
        .and_then(|&l| run.classify_suspect(w.window, l))
        .map(|c| format!("  [{:?}]", c.loss_type))
        .unwrap_or_default();
    let m = evaluate_diagnosis(&suspects, truth);
    // §4.1: a blamed link implicates either direction or its endpoints;
    // when all suspects share one switch, that switch is the real suspect
    // (a dead switch is observation-identical to all of one side of its
    // links failing, so PLL reports the minimal explaining set).
    let common = common_switch(ft, &suspects);
    println!(
        "{name:<28} suspects {:?}  accuracy {:.0}%  fp {:.0}%{}{}",
        suspects,
        100.0 * m.accuracy,
        100.0 * m.false_positive_ratio,
        common
            .map(|n| format!("  → common switch {n}"))
            .unwrap_or_default(),
        class
    );
}

/// The switch shared by every suspect link, if any.
fn common_switch(ft: &Fattree, suspects: &[LinkId]) -> Option<NodeId> {
    let (first, rest) = suspects.split_first()?;
    if rest.is_empty() {
        return None;
    }
    let l0 = ft.graph().link(*first);
    [l0.a, l0.b].into_iter().find(|&cand| {
        rest.iter().all(|&l| {
            let lk = ft.graph().link(l);
            lk.a == cand || lk.b == cand
        })
    })
}

fn main() {
    let ft = Fattree::new(4).expect("valid radix");
    let mut run = Detector::new(Arc::new(ft.clone()), SystemConfig::default()).expect("boot");

    // 1. Full loss on an edge-agg link.
    let l1 = ft.ea_link(2, 0, 1);
    let mut fabric = Fabric::quiet(&ft);
    fabric.set_discipline_both(l1, LossDiscipline::Full);
    drill("full loss:", &ft, &mut run, &fabric, &[l1]);

    // 2. Packet blackhole: 30% of the flow space dropped deterministically.
    let l2 = ft.ac_link(1, 1, 0);
    let mut fabric = Fabric::quiet(&ft);
    fabric.set_discipline_both(
        l2,
        LossDiscipline::DeterministicPartial {
            fraction: 0.3,
            salt: 99,
        },
    );
    drill("deterministic partial:", &ft, &mut run, &fabric, &[l2]);

    // 3. Random partial loss (CRC errors at 10%).
    let l3 = ft.ac_link(3, 0, 1);
    let mut fabric = Fabric::quiet(&ft);
    fabric.set_discipline_both(l3, LossDiscipline::RandomPartial { rate: 0.1 });
    drill("random partial:", &ft, &mut run, &fabric, &[l3]);

    // 4. A whole aggregation switch dies: all four of its links are bad.
    let sw = ft.agg(0, 0);
    let mut fabric = Fabric::quiet(&ft);
    fabric.kill_switch(sw);
    let truth: Vec<LinkId> = ft
        .graph()
        .neighbors(sw)
        .iter()
        .map(|&(_, l)| l)
        .filter(|l| l.index() < ft.probe_links())
        .collect();
    drill("switch down:", &ft, &mut run, &fabric, &truth);

    // 5. A sick pinger: the watchdog excludes it, so its all-lost report
    //    raises no alarm.
    let sick = ft.server(0, 0, 0);
    run.watchdog.mark_unhealthy(sick);
    let fabric = Fabric::quiet(&ft);
    drill("sick pinger (excluded):", &ft, &mut run, &fabric, &[]);
}
