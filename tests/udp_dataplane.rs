//! Integration tests for the UDP data plane: the full deTector runtime
//! driving real datagrams over the loopback harness.
//!
//! The unit tests in `crates/system/src/dataplane/udp*` cover the
//! retry/timeout state machine and the stamping fallback in isolation;
//! here the whole stack runs — planner → pinger → wire → responder →
//! report → PLL — and the properties that matter across the seam are
//! pinned: campaigns over real sockets reproduce bit-identically, the
//! shim's losses are diagnosable, and the untagged `probe` path works.

use std::sync::Arc;

use detector::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn config() -> SystemConfig {
    SystemConfig {
        probe_rate_pps: 0.2, // 6 probes per pinger-window keeps CI fast.
        ..SystemConfig::default()
    }
}

fn boot(ft: &Arc<Fattree>, sink: CollectingSink) -> Detector {
    Detector::builder(ft.clone() as SharedTopology)
        .config(config())
        .sink(Box::new(sink))
        .build()
        .expect("boot")
}

fn normalize(events: Vec<RuntimeEvent>) -> Vec<RuntimeEvent> {
    events.iter().map(RuntimeEvent::normalized).collect()
}

#[test]
fn detector_steps_over_real_sockets() {
    let ft = Arc::new(Fattree::new(4).unwrap());
    let clock = Arc::new(HostClock::new());
    let harness = UdpHarness::spawn(4, config().dport, clock).unwrap();
    let plane = harness.dataplane(&UdpConfig::default(), None).unwrap();

    let sink = CollectingSink::new();
    let mut det = boot(&ft, sink.clone());
    let mut rng = SmallRng::seed_from_u64(0xD0);
    for w in 0..2u64 {
        let res = det.step(&plane, &mut rng);
        assert_eq!(res.window, w);
        assert!(res.probes_sent > 0, "window {w} sent nothing");
        assert!(
            res.diagnosis.is_clean(),
            "a shim-free loopback window must diagnose clean: {:?}",
            res.diagnosis
        );
    }

    let stats = plane.stats();
    assert_eq!(
        stats.delivered, stats.sent,
        "loopback may not lose probes without a shim (retries would hide \
         a rare genuine drop, but then sent > delivered)"
    );
    assert_eq!(stats.decode_errors, 0);
    assert_eq!(harness.stats().corrupt, 0);
    assert_eq!(harness.stats().stray, 0);
}

#[test]
fn udp_campaigns_reproduce_bit_identically() {
    // Two completely separate harnesses, socket pools and runs — same
    // seeds — must produce identical window results and event streams.
    // RTT variance between the runs is real and different; nothing of it
    // may reach the compared output.
    let ft = Arc::new(Fattree::new(4).unwrap());
    let campaign = || {
        let clock = Arc::new(HostClock::new());
        let harness = UdpHarness::spawn(3, config().dport, clock).unwrap();
        let plane = harness
            .dataplane(&UdpConfig::default(), Some(LossShim::new(0xBEEF, 200)))
            .unwrap();
        let sink = CollectingSink::new();
        let mut det = boot(&ft, sink.clone());
        let mut rng = SmallRng::seed_from_u64(0x5EED);
        let results = det
            .run_scripted(&plane, 3, &Script::new(), &mut rng)
            .unwrap();
        (results, normalize(sink.events()), plane.stats())
    };

    let (res_a, events_a, stats_a) = campaign();
    let (res_b, events_b, stats_b) = campaign();
    assert_eq!(res_a, res_b, "UDP campaigns must reproduce exactly");
    assert_eq!(events_a, events_b, "event streams must reproduce exactly");
    assert_eq!(
        stats_a.shim_dropped, stats_b.shim_dropped,
        "the shim must drop the same probes in both campaigns"
    );
    assert!(stats_a.shim_dropped > 0, "the shim never fired");
    // Shimmed drops trigger loss confirmations deterministically too.
    assert_eq!(stats_a.sent, stats_b.sent);
}

#[test]
fn shim_losses_are_diagnosed_not_measured() {
    // A heavy shim produces real lossy-path observations: windows report
    // observations and the diagnosis machinery runs on them. The drop
    // decision never touched a socket, so the run stays fast and the
    // loss pattern is reproducible.
    let ft = Arc::new(Fattree::new(4).unwrap());
    let clock = Arc::new(HostClock::new());
    let harness = UdpHarness::spawn(4, config().dport, clock).unwrap();
    let plane = harness
        .dataplane(&UdpConfig::default(), Some(LossShim::new(7, 400)))
        .unwrap();

    let sink = CollectingSink::new();
    let mut det = boot(&ft, sink.clone());
    let mut rng = SmallRng::seed_from_u64(0xCAFE);
    let results = det
        .run_scripted(&plane, 2, &Script::new(), &mut rng)
        .unwrap();

    assert!(
        results.iter().any(|r| !r.diagnosis.is_clean()),
        "40% path loss must surface suspects"
    );
    let stats = plane.stats();
    assert!(stats.shim_dropped > 0);
    assert!(
        stats.timeouts == 0,
        "shimmed drops must not serve wire timeouts (got {})",
        stats.timeouts
    );
}

#[test]
fn untagged_probe_path_works() {
    // Direct DataPlane::probe (no tag): used by callers outside the
    // pinger, e.g. reachability checks. Must behave like an in-rack
    // probe — never shimmed, echoes normally.
    let ft = Arc::new(Fattree::new(4).unwrap());
    let clock = Arc::new(HostClock::new());
    let harness = UdpHarness::spawn(1, 53_533, clock).unwrap();
    // A shim that drops everything on matrix paths.
    let plane = harness
        .dataplane(&UdpConfig::default(), Some(LossShim::new(1, 1000)))
        .unwrap();
    let route = ft.ecmp_route(ft.server(0, 0, 0), ft.server(1, 0, 0), 0);
    let mut rng = SmallRng::seed_from_u64(2);
    let out = plane.probe(&route, FlowKey::udp(1, 2, 33_000, 53_533), &mut rng);
    assert!(
        out.delivered,
        "untagged probes are in-rack: the shim must spare them"
    );
    assert_eq!(plane.stats().shim_dropped, 0);
}
