//! Cross-crate integration tests: the full controller → pinger →
//! diagnoser pipeline against the simulated fabric.

use std::sync::Arc;

use detector::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn full_pipeline_is_deterministic() {
    let ft = Fattree::new(4).unwrap();
    let run_once = || {
        let mut run = Detector::new(Arc::new(ft.clone()), SystemConfig::default()).unwrap();
        let mut fabric = Fabric::new(&ft, 5);
        fabric.set_discipline_both(
            ft.ac_link(0, 0, 0),
            LossDiscipline::RandomPartial { rate: 0.2 },
        );
        let mut rng = SmallRng::seed_from_u64(99);
        let mut out = Vec::new();
        for _ in 0..3 {
            let w = run.step(&fabric, &mut rng);
            out.push((w.probes_sent, w.diagnosis.suspect_links()));
        }
        out
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn every_loss_type_is_localized_by_the_runtime() {
    let ft = Fattree::new(4).unwrap();
    let cases: Vec<(&str, LossDiscipline)> = vec![
        ("full", LossDiscipline::Full),
        (
            "blackhole",
            LossDiscipline::DeterministicPartial {
                fraction: 0.4,
                salt: 5,
            },
        ),
        ("random", LossDiscipline::RandomPartial { rate: 0.3 }),
    ];
    for (i, (name, disc)) in cases.into_iter().enumerate() {
        let mut run = Detector::new(Arc::new(ft.clone()), SystemConfig::default()).unwrap();
        let bad = ft.ea_link(1, 1, 0);
        let mut fabric = Fabric::new(&ft, 40 + i as u64);
        fabric.set_discipline_both(bad, disc);
        let mut rng = SmallRng::seed_from_u64(7 + i as u64);
        let w = run.step(&fabric, &mut rng);
        assert!(
            w.diagnosis.suspect_links().contains(&bad),
            "{name}: suspects {:?}",
            w.diagnosis.suspect_links()
        );
    }
}

#[test]
fn one_directional_failure_is_still_caught() {
    // §4.1: the response probes the reverse direction, so a failure in
    // either direction of a link must surface.
    let ft = Fattree::new(4).unwrap();
    let mut run = Detector::new(Arc::new(ft.clone()), SystemConfig::default()).unwrap();
    let bad = ft.ac_link(2, 0, 1);
    let mut fabric = Fabric::quiet(&ft);
    fabric.set_discipline(bad, detector::simnet::LinkDir::BtoA, LossDiscipline::Full);
    let mut rng = SmallRng::seed_from_u64(3);
    let w = run.step(&fabric, &mut rng);
    assert!(w.diagnosis.suspect_links().contains(&bad));
}

#[test]
fn healthy_network_with_noise_stays_quiet() {
    let ft = Fattree::new(4).unwrap();
    let mut run = Detector::new(Arc::new(ft.clone()), SystemConfig::default()).unwrap();
    let fabric = Fabric::new(&ft, 11); // Noise only.
    let mut rng = SmallRng::seed_from_u64(13);
    let mut alarms = 0;
    for _ in 0..5 {
        let w = run.step(&fabric, &mut rng);
        alarms += w.diagnosis.suspects.len();
    }
    assert_eq!(alarms, 0, "background noise must not raise alarms");
}

#[test]
fn vl2_and_bcube_pipelines_work_end_to_end() {
    let vl2 = Vl2::new(4, 4, 2).unwrap();
    let mut run = Detector::new(Arc::new(vl2.clone()), SystemConfig::default()).unwrap();
    let bad = LinkId(2); // A ToR-agg link.
    let mut fabric = Fabric::quiet(&vl2);
    fabric.set_discipline_both(bad, LossDiscipline::Full);
    let mut rng = SmallRng::seed_from_u64(17);
    let w = run.step(&fabric, &mut rng);
    assert!(
        w.diagnosis.suspect_links().contains(&bad),
        "vl2 suspects: {:?}",
        w.diagnosis.suspect_links()
    );

    let bc = BCube::new(3, 1).unwrap();
    let mut run = Detector::new(Arc::new(bc.clone()), SystemConfig::default()).unwrap();
    let bad = LinkId(4);
    let mut fabric = Fabric::quiet(&bc);
    fabric.set_discipline_both(bad, LossDiscipline::Full);
    let w = run.step(&fabric, &mut rng);
    assert!(
        w.diagnosis.suspect_links().contains(&bad),
        "bcube suspects: {:?}",
        w.diagnosis.suspect_links()
    );
}

#[test]
fn detection_beats_baselines_on_transient_failures() {
    // The coupling argument (§2): deTector localizes from the window that
    // detected the loss; a baseline's post-alarm round finds a healed
    // fabric.
    let ft = Fattree::new(4).unwrap();
    let mut run = Detector::new(Arc::new(ft.clone()), SystemConfig::default()).unwrap();
    let bad = ft.ea_link(3, 0, 1);
    let mut fabric = Fabric::quiet(&ft);
    fabric.set_discipline_both(bad, LossDiscipline::Full);
    let mut rng = SmallRng::seed_from_u64(23);

    // deTector: detected and localized within the failure's lifetime.
    let w = run.step(&fabric, &mut rng);
    assert!(w.diagnosis.suspect_links().contains(&bad));

    // Baseline: detects suspect pairs, but the failure clears before the
    // localization round.
    let bcfg = BaselineConfig::default();
    let pm = BaselineSystem::pingmesh(&ft, bcfg);
    let det = pm.detect_window(&fabric, 8000, &mut rng);
    assert!(!det.suspects.is_empty(), "pingmesh must detect the loss");
    fabric.clear_failures(); // Transient failure heals.
    let diag = netbouncer_localize(&ft, &fabric, &det.suspects, &bcfg, u64::MAX, &mut rng);
    assert!(
        !diag.links.contains(&bad),
        "the post-alarm sweep cannot see a healed failure"
    );
}

#[test]
fn probe_matrix_quality_matches_construction_claims() {
    for k in [4u32, 6, 8] {
        let ft = Fattree::new(k).unwrap();
        let m = construct_symmetric(&ft, &PmcConfig::new(2, 1)).unwrap();
        assert!(m.achieved.targets_met, "k={k}");
        assert!(min_coverage(&m) >= 2, "k={k}");
        assert_eq!(max_identifiability(&m, 1), 1, "k={k}");
        // All paths are valid routes of the topology.
        for p in &m.paths {
            ft.graph()
                .route_from_nodes(p.nodes().to_vec())
                .expect("matrix path must be routable");
        }
    }
}

#[test]
fn suspect_loss_types_are_classified() {
    use detector::core::pll::LossType;

    let ft = Fattree::new(4).unwrap();
    let bad = ft.ea_link(1, 1, 0);
    let cases: Vec<(LossDiscipline, LossType)> = vec![
        (LossDiscipline::Full, LossType::Full),
        (
            LossDiscipline::DeterministicPartial {
                fraction: 0.5,
                salt: 77,
            },
            LossType::DeterministicPartial,
        ),
        (
            LossDiscipline::RandomPartial { rate: 0.3 },
            LossType::RandomPartial,
        ),
    ];
    for (i, (disc, want)) in cases.into_iter().enumerate() {
        let mut run = Detector::new(Arc::new(ft.clone()), SystemConfig::default()).unwrap();
        let mut fabric = Fabric::quiet(&ft);
        fabric.set_discipline_both(bad, disc);
        let mut rng = SmallRng::seed_from_u64(60 + i as u64);
        let w = run.step(&fabric, &mut rng);
        assert!(w.diagnosis.suspect_links().contains(&bad));
        let c = run
            .classify_suspect(w.window, bad)
            .expect("classification evidence must exist");
        assert_eq!(c.loss_type, want, "case {i}: {c:?}");
    }
}
