//! Real two-process distributed smoke test: the controller tier in this
//! process, one [`PingerAgent`] per host group in a *separate OS
//! process*, speaking the wire protocol over localhost TCP — and the
//! whole run asserted equal to the single-process sequential oracle.
//!
//! The child processes are this same test binary re-entered at
//! [`child_agent_process`] (selected with `--exact --ignored`), which
//! rebuilds the identical topology and fabric from the shared
//! constants, connects a [`TcpTransport`] back to the parent's
//! listener, and serves frames until `Shutdown`.
//!
//! `#[ignore]`d in the default suite (spawns processes, binds sockets);
//! the CI distributed-smoke job runs it explicitly:
//! `cargo test --release --test tcp_two_process -- --ignored`.

use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

use detector::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Both processes must build the *same* world from these constants.
const FATTREE_K: u32 = 4;
const AGENTS: usize = 2;
const WINDOWS: u64 = 3;
const SEED: u64 = 0x7C9;

/// The scenario's failed link: every process derives it the same way.
fn bad_link(ft: &Fattree) -> LinkId {
    ft.ac_link(1, 0, 1)
}

fn fabric(ft: &Fattree) -> Fabric<'_> {
    let mut fabric = Fabric::quiet(ft);
    fabric.set_discipline_both(bad_link(ft), LossDiscipline::Full);
    fabric
}

/// Child-process entry point; a no-op unless the parent set the
/// handshake environment. Never run this directly.
#[test]
#[ignore = "child-process entry; spawned by two_process_tcp_run_matches_oracle"]
fn child_agent_process() {
    let Ok(addr) = std::env::var("DETECTOR_TCP_ADDR") else {
        return;
    };
    let group: u32 = std::env::var("DETECTOR_TCP_GROUP")
        .expect("group id set alongside the address")
        .parse()
        .expect("numeric group id");
    let ft = Arc::new(Fattree::new(FATTREE_K).expect("child topology"));
    let fabric = fabric(ft.as_ref());
    let transport =
        TcpTransport::connect(addr.parse().expect("socket address")).expect("connect to parent");
    let exit = PingerAgent::new(group, ft.clone() as SharedTopology, SystemConfig::default())
        .serve(&transport, &fabric);
    assert_eq!(exit, AgentExit::Shutdown, "child must exit orderly");
}

#[test]
#[ignore = "two-process TCP integration; CI distributed-smoke job runs it with --ignored"]
fn two_process_tcp_run_matches_oracle() {
    let ft = Arc::new(Fattree::new(FATTREE_K).expect("topology"));
    let fabric = fabric(ft.as_ref());

    // One listener per host group keeps the group → connection mapping
    // deterministic regardless of child start-up order.
    let listeners: Vec<TcpListener> = (0..AGENTS)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let exe = std::env::current_exe().expect("test binary path");
    let mut children: Vec<Child> = listeners
        .iter()
        .enumerate()
        .map(|(g, l)| {
            Command::new(&exe)
                .args(["child_agent_process", "--exact", "--ignored"])
                .env("DETECTOR_TCP_ADDR", l.local_addr().unwrap().to_string())
                .env("DETECTOR_TCP_GROUP", g.to_string())
                .stdout(Stdio::null())
                .spawn()
                .expect("spawn child agent process")
        })
        .collect();

    let dist_sink = CollectingSink::new();
    let mut dist = DistributedDetector::new(
        ft.clone() as SharedTopology,
        SystemConfig::default(),
        AGENTS,
    )
    .expect("boot controller tier");
    dist.add_sink(Box::new(dist_sink.clone()));
    let mut rng = SmallRng::seed_from_u64(SEED);
    let outcome = dist
        .run_distributed_over(
            &fabric,
            WINDOWS,
            &DistScript::new(),
            &mut rng,
            &mut |g| {
                let (stream, _) = listeners[g].accept().ok()?;
                Some(Box::new(TcpTransport::new(stream).ok()?) as Box<dyn ControlTransport>)
            },
            // No scripted AgentUp in this scenario.
            &mut |_| None,
        )
        .expect("distributed TCP run");

    for child in &mut children {
        let status = child.wait().expect("child exits");
        assert!(status.success(), "child agent process failed: {status}");
    }

    // The sequential oracle over the same fabric, seed and (empty)
    // script must produce identical window results and an identical
    // normalized event stream — the same contract the loopback
    // equivalence suite enforces, now across a real process boundary.
    let seq_sink = CollectingSink::new();
    let mut seq = Detector::builder(ft.clone() as SharedTopology)
        .sink(Box::new(seq_sink.clone()))
        .build()
        .expect("boot oracle");
    let mut rng = SmallRng::seed_from_u64(SEED);
    let seq_results = seq
        .run_scripted(&fabric, WINDOWS, &Script::new(), &mut rng)
        .expect("sequential oracle");

    assert_eq!(seq_results, outcome.results, "window results diverge");
    let normalize =
        |evs: Vec<RuntimeEvent>| evs.iter().map(RuntimeEvent::normalized).collect::<Vec<_>>();
    assert_eq!(
        normalize(seq_sink.events()),
        normalize(dist_sink.events()),
        "event streams diverge across the process boundary"
    );

    // The diagnosis caught the scenario's failed link in every window.
    for r in &outcome.results {
        assert!(
            r.diagnosis.suspect_links().contains(&bad_link(&ft)),
            "window {}: suspects {:?}",
            r.window,
            r.diagnosis.suspect_links()
        );
    }
    // Wire accounting flowed through the TCP byte counters.
    assert!(outcome.control_bytes > 0, "control-plane bytes counted");
    assert!(outcome.report_bytes > 0, "report-plane bytes counted");
}
