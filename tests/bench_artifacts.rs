//! Keeps the committed benchmark snapshots honest.
//!
//! `BENCH_replan.json` and `BENCH_sched.json` are JSON-lines files
//! produced by the criterion shim's `CRITERION_JSON` feed (one record
//! per benchmark: group, bench, min/median/mean/max/std-dev in
//! nanoseconds, sample count). They are the machine-readable
//! perf-trajectory record the roadmap asks for — each PR that moves the
//! replan or scheduler numbers regenerates them with
//!
//! ```text
//! CRITERION_JSON=$PWD/BENCH_replan.json cargo bench -p detector-bench --bench replan_latency
//! CRITERION_JSON=$PWD/BENCH_sched.json  cargo bench -p detector-bench --bench scheduler_throughput
//! CRITERION_JSON=$PWD/BENCH_ingest.json cargo bench -p detector-bench --bench ingest_throughput
//! CRITERION_JSON=$PWD/BENCH_diag.json   cargo bench -p detector-bench --bench diag_parallel
//! CRITERION_JSON=$PWD/BENCH_udp.json    cargo bench -p detector-bench --bench probe_rtt
//! ```
//!
//! These tests parse both files with the in-tree JSON reader, so a
//! malformed or stale-schema snapshot fails tier-1 rather than rotting
//! silently. They validate structure, not timings — numbers vary by
//! machine.

use detector_core::json::Json;

fn records(path: &str) -> Vec<Json> {
    let root = env!("CARGO_MANIFEST_DIR");
    let text = std::fs::read_to_string(format!("{root}/{path}"))
        .unwrap_or_else(|e| panic!("{path} must exist at the workspace root: {e}"));
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("{path}: bad record {l:?}: {e:?}")))
        .collect()
}

fn check_schema(path: &str, recs: &[Json]) {
    assert!(!recs.is_empty(), "{path} has no records");
    for r in recs {
        for key in ["group", "bench"] {
            assert!(
                r.get(key).and_then(Json::as_str).is_some(),
                "{path}: record missing string field {key}: {r:?}"
            );
        }
        for key in [
            "min_ns",
            "median_ns",
            "mean_ns",
            "max_ns",
            "std_dev_ns",
            "samples",
        ] {
            assert!(
                r.get(key).and_then(Json::as_u64).is_some(),
                "{path}: record missing numeric field {key}: {r:?}"
            );
        }
        let min = r.get("min_ns").and_then(Json::as_u64).unwrap();
        let med = r.get("median_ns").and_then(Json::as_u64).unwrap();
        let max = r.get("max_ns").and_then(Json::as_u64).unwrap();
        assert!(min <= med && med <= max, "{path}: unordered stats: {r:?}");
        assert!(
            min > 0,
            "{path}: zero-time sample is not a measurement: {r:?}"
        );
    }
}

#[test]
fn replan_snapshot_parses_and_covers_both_modes() {
    let recs = records("BENCH_replan.json");
    check_schema("BENCH_replan.json", &recs);
    let benches: Vec<&str> = recs
        .iter()
        .filter_map(|r| r.get("bench").and_then(Json::as_str))
        .collect();
    // The snapshot must keep the full-vs-incremental comparison alive.
    assert!(
        benches.iter().any(|b| b.starts_with("full_")),
        "no full-replan records: {benches:?}"
    );
    assert!(
        benches.iter().any(|b| b.starts_with("incremental_")),
        "no incremental-replan records: {benches:?}"
    );
}

#[test]
fn scheduler_snapshot_parses_and_covers_both_drivers() {
    let recs = records("BENCH_sched.json");
    check_schema("BENCH_sched.json", &recs);
    let benches: Vec<&str> = recs
        .iter()
        .filter_map(|r| r.get("bench").and_then(Json::as_str))
        .collect();
    assert!(
        benches.contains(&"sequential") && benches.contains(&"pipelined"),
        "snapshot must compare sequential and pipelined drivers: {benches:?}"
    );
}

/// The streaming-ingest snapshot carries two claims, both checked
/// against the *committed* records (so the test is deterministic — it
/// guards the snapshot pair, and regenerating either file on a machine
/// that can't hold the claims fails loudly instead of rotting):
///
/// * the fold benches clear the ingest plane's throughput floor of
///   1M path-report entries/s (entry counts are encoded in the bench
///   names as `..._{N}entries`);
/// * wiring ingest into the window loop kept scheduler throughput —
///   `fattree16_windows/pipelined_4w` here vs `fattree16_cpu/pipelined`
///   in `BENCH_sched.json` — within 10% of the pre-ingest windows/s.
#[test]
fn ingest_snapshot_holds_throughput_floor_and_scheduler_guard() {
    let recs = records("BENCH_ingest.json");
    check_schema("BENCH_ingest.json", &recs);

    let fold_records: Vec<&Json> = recs
        .iter()
        .filter(|r| {
            r.get("bench")
                .and_then(Json::as_str)
                .is_some_and(|b| b.starts_with("fold_seal_"))
        })
        .collect();
    assert!(
        fold_records.len() >= 2,
        "snapshot must keep the single- and multi-thread fold arms"
    );
    for r in &fold_records {
        let bench = r.get("bench").and_then(Json::as_str).unwrap();
        let entries: u64 = bench
            .rsplit('_')
            .next()
            .and_then(|tail| tail.strip_suffix("entries"))
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("fold bench name must end in _{{N}}entries: {bench:?}"));
        let median_ns = r.get("median_ns").and_then(Json::as_u64).unwrap();
        let entries_per_s = entries as f64 * 1e9 / median_ns as f64;
        assert!(
            entries_per_s >= 1_000_000.0,
            "{bench}: {entries_per_s:.0} path-report entries/s is below the 1M/s floor"
        );
    }

    let median_of = |recs: &[Json], group: &str, bench: &str| -> u64 {
        recs.iter()
            .find(|r| {
                r.get("group").and_then(Json::as_str) == Some(group)
                    && r.get("bench").and_then(Json::as_str) == Some(bench)
            })
            .unwrap_or_else(|| panic!("missing record {group}/{bench}"))
            .get("median_ns")
            .and_then(Json::as_u64)
            .unwrap()
    };
    // Both arms run 4-window campaigns, so windows/s compare as inverse
    // medians: ingest-era throughput must stay within 10% of the
    // committed pre-ingest scheduler number.
    let ingest_ns = median_of(&recs, "ingest_throughput/fattree16_windows", "pipelined_4w");
    let sched = records("BENCH_sched.json");
    let sched_ns = median_of(&sched, "scheduler_throughput/fattree16_cpu", "pipelined");
    assert!(
        ingest_ns as f64 <= sched_ns as f64 * 1.1,
        "ingest-era pipelined window campaign ({ingest_ns} ns) is more than 10% slower \
         than the committed scheduler baseline ({sched_ns} ns)"
    );
}

/// The component-parallel diagnosis snapshot carries the PR's two perf
/// claims, checked against the *committed* records:
///
/// * on the Fattree(16) multi-failure storm, the component-decomposed
///   fan-out at 4 workers diagnoses a window ≥1.5× faster than the
///   sequential `localize` oracle (medians of the same alternating
///   two-window workload);
/// * routing component jobs through the pipelined scheduler's worker
///   channel kept end-to-end windows/s — `fattree16_windows/
///   pipelined_diag4` here vs `fattree16_cpu/pipelined` in
///   `BENCH_sched.json` — within 10% of the committed baseline.
#[test]
fn diag_snapshot_holds_speedup_and_scheduler_guard() {
    let recs = records("BENCH_diag.json");
    check_schema("BENCH_diag.json", &recs);

    let median_of = |recs: &[Json], group: &str, bench: &str| -> u64 {
        recs.iter()
            .find(|r| {
                r.get("group").and_then(Json::as_str) == Some(group)
                    && r.get("bench").and_then(Json::as_str) == Some(bench)
            })
            .unwrap_or_else(|| panic!("missing record {group}/{bench}"))
            .get("median_ns")
            .and_then(Json::as_u64)
            .unwrap()
    };
    let multifail = "diag_parallel/fattree16_multifail";
    let sequential = median_of(&recs, multifail, "sequential");
    let parallel = median_of(&recs, multifail, "parallel_4w");
    // The attribution arm must stay in the snapshot so the decomposition
    // vs thread-fan-out split remains visible.
    let _ = median_of(&recs, multifail, "parallel_1w");
    assert!(
        sequential as f64 >= parallel as f64 * 1.5,
        "component-parallel diagnosis must hold its 1.5× speedup over the \
         sequential oracle: sequential {sequential} ns, parallel_4w {parallel} ns"
    );

    // Both campaigns run 4 windows, so windows/s compare as inverse
    // medians against the committed scheduler baseline.
    let diag_ns = median_of(&recs, "diag_parallel/fattree16_windows", "pipelined_diag4");
    let sched = records("BENCH_sched.json");
    let sched_ns = median_of(&sched, "scheduler_throughput/fattree16_cpu", "pipelined");
    assert!(
        diag_ns as f64 <= sched_ns as f64 * 1.1,
        "diagnosis fan-out slowed the pipelined window campaign ({diag_ns} ns) more \
         than 10% past the committed scheduler baseline ({sched_ns} ns)"
    );
}

/// The UDP data-plane snapshot (`BENCH_udp.json`, regenerated with
/// `CRITERION_JSON=$PWD/BENCH_udp.json cargo bench -p detector-bench
/// --bench probe_rtt`) carries the real-packet backend's perf claim,
/// checked against the *committed* records:
///
/// * the per-probe loopback round trip stays under 1 ms (encode →
///   socket → responder thread → echo → match → stamp; anything worse
///   means the recv/match path regressed into busy-wait territory);
/// * a pipelined Fattree(16) 4-window campaign over real sockets keeps
///   windows/s within 2× of the committed simulated-wire baseline
///   (`scheduler_throughput/fattree16_wire/pipelined` in
///   `BENCH_sched.json`) — real packets may cost, but not an order of
///   magnitude.
#[test]
fn udp_snapshot_holds_rtt_and_wire_baseline_guard() {
    let recs = records("BENCH_udp.json");
    check_schema("BENCH_udp.json", &recs);

    let median_of = |recs: &[Json], group: &str, bench: &str| -> u64 {
        recs.iter()
            .find(|r| {
                r.get("group").and_then(Json::as_str) == Some(group)
                    && r.get("bench").and_then(Json::as_str) == Some(bench)
            })
            .unwrap_or_else(|| panic!("missing record {group}/{bench}"))
            .get("median_ns")
            .and_then(Json::as_u64)
            .unwrap()
    };

    let rtt_ns = median_of(&recs, "probe_rtt/loopback", "single_probe");
    assert!(
        rtt_ns < 1_000_000,
        "a loopback probe round trip took {rtt_ns} ns (≥ 1 ms): the \
         echo-match path has regressed"
    );

    // The sequential arm must stay in the snapshot so the
    // pipeline-over-real-wait comparison remains visible.
    let _ = median_of(&recs, "probe_rtt/fattree16_udp", "sequential");
    let udp_ns = median_of(&recs, "probe_rtt/fattree16_udp", "pipelined");
    let sched = records("BENCH_sched.json");
    let wire_ns = median_of(&sched, "scheduler_throughput/fattree16_wire", "pipelined");
    assert!(
        udp_ns as f64 <= wire_ns as f64 * 2.0,
        "pipelined UDP campaign ({udp_ns} ns / 4 windows) is more than 2× \
         slower than the committed simulated-wire baseline ({wire_ns} ns)"
    );
}

/// `BENCH_dispatch.json` carries byte counts, not timings (bytes are
/// machine-independent, so the snapshot is exactly reproducible with
/// `DISPATCH_JSON=$PWD/BENCH_dispatch.json cargo bench -p detector-bench
/// --bench dispatch_bytes`). This check enforces the distributed control
/// plane's wire-cost claim: a Fattree(16) single-link delta must ship
/// ≥10× fewer bytes as per-entry diffs than as whole-list redispatch.
#[test]
fn dispatch_snapshot_shows_per_entry_diffs_ten_times_below_whole_lists() {
    let recs = records("BENCH_dispatch.json");
    let bytes_of = |bench: &str| -> u64 {
        recs.iter()
            .find(|r| r.get("bench").and_then(Json::as_str) == Some(bench))
            .unwrap_or_else(|| panic!("BENCH_dispatch.json: missing bench {bench:?}"))
            .get("bytes")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("BENCH_dispatch.json: {bench}: missing numeric bytes"))
    };
    let diff = bytes_of("per_entry_diff");
    let whole = bytes_of("whole_list");
    assert!(diff > 0, "a single-link delta must ship something");
    for r in &recs {
        for key in ["group", "bench"] {
            assert!(
                r.get(key).and_then(Json::as_str).is_some(),
                "BENCH_dispatch.json: record missing string field {key}: {r:?}"
            );
        }
    }
    assert!(
        diff * 10 <= whole,
        "per-entry diffs must be ≥10× below whole-list redispatch: \
         diff {diff} B, whole {whole} B"
    );
    // The summary record must agree with the raw byte counts.
    let ratio = recs
        .iter()
        .find(|r| r.get("bench").and_then(Json::as_str) == Some("ratio"))
        .and_then(|r| r.get("ratio_x100"))
        .and_then(Json::as_u64)
        .expect("BENCH_dispatch.json: missing ratio record");
    assert_eq!(ratio, whole * 100 / diff, "stale ratio record");
}
