//! Keeps the committed benchmark snapshots honest.
//!
//! `BENCH_replan.json` and `BENCH_sched.json` are JSON-lines files
//! produced by the criterion shim's `CRITERION_JSON` feed (one record
//! per benchmark: group, bench, min/median/mean/max/std-dev in
//! nanoseconds, sample count). They are the machine-readable
//! perf-trajectory record the roadmap asks for — each PR that moves the
//! replan or scheduler numbers regenerates them with
//!
//! ```text
//! CRITERION_JSON=$PWD/BENCH_replan.json cargo bench -p detector-bench --bench replan_latency
//! CRITERION_JSON=$PWD/BENCH_sched.json  cargo bench -p detector-bench --bench scheduler_throughput
//! ```
//!
//! These tests parse both files with the in-tree JSON reader, so a
//! malformed or stale-schema snapshot fails tier-1 rather than rotting
//! silently. They validate structure, not timings — numbers vary by
//! machine.

use detector_core::json::Json;

fn records(path: &str) -> Vec<Json> {
    let root = env!("CARGO_MANIFEST_DIR");
    let text = std::fs::read_to_string(format!("{root}/{path}"))
        .unwrap_or_else(|e| panic!("{path} must exist at the workspace root: {e}"));
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("{path}: bad record {l:?}: {e:?}")))
        .collect()
}

fn check_schema(path: &str, recs: &[Json]) {
    assert!(!recs.is_empty(), "{path} has no records");
    for r in recs {
        for key in ["group", "bench"] {
            assert!(
                r.get(key).and_then(Json::as_str).is_some(),
                "{path}: record missing string field {key}: {r:?}"
            );
        }
        for key in [
            "min_ns",
            "median_ns",
            "mean_ns",
            "max_ns",
            "std_dev_ns",
            "samples",
        ] {
            assert!(
                r.get(key).and_then(Json::as_u64).is_some(),
                "{path}: record missing numeric field {key}: {r:?}"
            );
        }
        let min = r.get("min_ns").and_then(Json::as_u64).unwrap();
        let med = r.get("median_ns").and_then(Json::as_u64).unwrap();
        let max = r.get("max_ns").and_then(Json::as_u64).unwrap();
        assert!(min <= med && med <= max, "{path}: unordered stats: {r:?}");
        assert!(
            min > 0,
            "{path}: zero-time sample is not a measurement: {r:?}"
        );
    }
}

#[test]
fn replan_snapshot_parses_and_covers_both_modes() {
    let recs = records("BENCH_replan.json");
    check_schema("BENCH_replan.json", &recs);
    let benches: Vec<&str> = recs
        .iter()
        .filter_map(|r| r.get("bench").and_then(Json::as_str))
        .collect();
    // The snapshot must keep the full-vs-incremental comparison alive.
    assert!(
        benches.iter().any(|b| b.starts_with("full_")),
        "no full-replan records: {benches:?}"
    );
    assert!(
        benches.iter().any(|b| b.starts_with("incremental_")),
        "no incremental-replan records: {benches:?}"
    );
}

#[test]
fn scheduler_snapshot_parses_and_covers_both_drivers() {
    let recs = records("BENCH_sched.json");
    check_schema("BENCH_sched.json", &recs);
    let benches: Vec<&str> = recs
        .iter()
        .filter_map(|r| r.get("bench").and_then(Json::as_str))
        .collect();
    assert!(
        benches.contains(&"sequential") && benches.contains(&"pipelined"),
        "snapshot must compare sequential and pipelined drivers: {benches:?}"
    );
}

/// `BENCH_dispatch.json` carries byte counts, not timings (bytes are
/// machine-independent, so the snapshot is exactly reproducible with
/// `DISPATCH_JSON=$PWD/BENCH_dispatch.json cargo bench -p detector-bench
/// --bench dispatch_bytes`). This check enforces the distributed control
/// plane's wire-cost claim: a Fattree(16) single-link delta must ship
/// ≥10× fewer bytes as per-entry diffs than as whole-list redispatch.
#[test]
fn dispatch_snapshot_shows_per_entry_diffs_ten_times_below_whole_lists() {
    let recs = records("BENCH_dispatch.json");
    let bytes_of = |bench: &str| -> u64 {
        recs.iter()
            .find(|r| r.get("bench").and_then(Json::as_str) == Some(bench))
            .unwrap_or_else(|| panic!("BENCH_dispatch.json: missing bench {bench:?}"))
            .get("bytes")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("BENCH_dispatch.json: {bench}: missing numeric bytes"))
    };
    let diff = bytes_of("per_entry_diff");
    let whole = bytes_of("whole_list");
    assert!(diff > 0, "a single-link delta must ship something");
    for r in &recs {
        for key in ["group", "bench"] {
            assert!(
                r.get(key).and_then(Json::as_str).is_some(),
                "BENCH_dispatch.json: record missing string field {key}: {r:?}"
            );
        }
    }
    assert!(
        diff * 10 <= whole,
        "per-entry diffs must be ≥10× below whole-list redispatch: \
         diff {diff} B, whole {whole} B"
    );
    // The summary record must agree with the raw byte counts.
    let ratio = recs
        .iter()
        .find(|r| r.get("bench").and_then(Json::as_str) == Some("ratio"))
        .and_then(|r| r.get("ratio_x100"))
        .and_then(Json::as_u64)
        .expect("BENCH_dispatch.json: missing ratio record");
    assert_eq!(ratio, whole * 100 / diff, "stale ratio record");
}
