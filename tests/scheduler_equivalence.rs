//! The scenario harness proving the pipelined scheduler equivalent to
//! the sequential `step()` oracle.
//!
//! `Detector::run_pipelined` overlaps probe dispatch, report collection
//! and diagnosis across windows on worker threads; this harness asserts
//! that under arbitrary combinations of
//!
//! * **loss** — random per-link disciplines on the fabric,
//! * **churn** — scripted `TopologyEvent`s re-planning mid-run,
//! * **pinger failure** — scripted watchdog health marks,
//! * **cycle-boundary refreshes** — a short controller cycle so matrix
//!   refreshes land inside the run,
//!
//! the pipelined run produces exactly the per-window `DiagnosisReady`
//! results and the same totally ordered `RuntimeEvent` stream as driving
//! `step()` sequentially over the same script — the only tolerated
//! difference being the wall-clock `replan_micros` field of
//! `PlanUpdated`.

use std::sync::Arc;

use detector::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A short cycle (two 30-second windows) so refreshes fire mid-run.
fn config() -> SystemConfig {
    SystemConfig {
        cycle_s: 60,
        ..SystemConfig::default()
    }
}

/// The same short-cycle config with incremental PLL switched on.
fn incremental_config() -> SystemConfig {
    let mut cfg = config();
    cfg.pll = cfg.pll.incremental();
    cfg
}

/// The short-cycle config with component-parallel diagnosis.
fn parallel_config(workers: usize) -> SystemConfig {
    config().with_parallel_diagnosis(workers)
}

/// Component-parallel diagnosis composed with the incremental
/// skeleton cache.
fn parallel_incremental_config(workers: usize) -> SystemConfig {
    incremental_config().with_parallel_diagnosis(workers)
}

fn detector_with(ft: &Arc<Fattree>, sink: CollectingSink, cfg: SystemConfig) -> Detector {
    Detector::builder(ft.clone() as SharedTopology)
        .config(cfg)
        .sink(Box::new(sink))
        .build()
        .expect("boot")
}

fn detector(ft: &Arc<Fattree>, sink: CollectingSink) -> Detector {
    detector_with(ft, sink, config())
}

/// Decodes one raw `(kind, target)` pair into a scripted action. Small
/// target ranges make down/up and unhealthy/healthy collisions likely.
fn decode_action(ft: &Fattree, kind: u8, target: u16) -> ScriptAction {
    let probe_links = ft.probe_links() as u32;
    let switches = ft.graph().num_switches() as u32;
    match kind % 6 {
        0 => ScriptAction::Topology(TopologyEvent::LinkDown {
            link: LinkId(u32::from(target) % probe_links),
        }),
        1 => ScriptAction::Topology(TopologyEvent::LinkUp {
            link: LinkId(u32::from(target) % probe_links),
        }),
        2 => ScriptAction::Topology(TopologyEvent::SwitchDrain {
            switch: NodeId(u32::from(target) % switches),
        }),
        3 => ScriptAction::Topology(TopologyEvent::SwitchUndrain {
            switch: NodeId(u32::from(target) % switches),
        }),
        4 => ScriptAction::MarkUnhealthy(sample_server(ft, target)),
        _ => ScriptAction::MarkHealthy(sample_server(ft, target)),
    }
}

fn sample_server(ft: &Fattree, target: u16) -> NodeId {
    let t = u32::from(target);
    let k = ft.k();
    let half = ft.half();
    ft.server(t % k, (t / k) % half, (t / (k * half)) % half)
}

/// Decodes a raw failure triple into a fabric loss discipline.
fn decode_failure(ft: &Fattree, link: u16, kind: u8, level: u8) -> (LinkId, LossDiscipline) {
    let l = LinkId(u32::from(link) % ft.probe_links() as u32);
    let disc = match kind % 3 {
        0 => LossDiscipline::Full,
        1 => LossDiscipline::RandomPartial {
            rate: 0.1 + f64::from(level % 8) / 10.0,
        },
        _ => LossDiscipline::DeterministicPartial {
            fraction: 0.2 + f64::from(level % 6) / 10.0,
            salt: u64::from(level),
        },
    };
    (l, disc)
}

/// Zeroes the wall-clock fields (`RuntimeEvent::normalized`) so streams
/// from different executions compare equal.
fn normalize(events: Vec<RuntimeEvent>) -> Vec<RuntimeEvent> {
    events.iter().map(RuntimeEvent::normalized).collect()
}

/// Runs the same scenario sequentially and pipelined, asserting equal
/// window results, equal (normalized) event streams, and equal final
/// detector state.
fn check_equivalence(
    ft: Arc<Fattree>,
    failures: &[(u16, u8, u8)],
    raw_script: &[(u8, u8, u16)],
    windows: u64,
    seed: u64,
    pipeline: &PipelineConfig,
) {
    let mut fabric = Fabric::new(ft.as_ref(), seed ^ 0xFAB);
    for &(link, kind, level) in failures {
        let (l, d) = decode_failure(&ft, link, kind, level);
        fabric.set_discipline_both(l, d);
    }
    let script = raw_script
        .iter()
        .fold(Script::new(), |s, &(window, kind, target)| {
            s.at(
                u64::from(window) % windows,
                decode_action(&ft, kind, target),
            )
        });

    let seq_sink = CollectingSink::new();
    let mut seq = detector(&ft, seq_sink.clone());
    let mut rng = SmallRng::seed_from_u64(seed);
    let seq_results = seq
        .run_scripted(&fabric, windows, &script, &mut rng)
        .expect("sequential oracle");

    let pipe_sink = CollectingSink::new();
    let mut pipe = detector(&ft, pipe_sink.clone());
    let mut rng = SmallRng::seed_from_u64(seed);
    let pipe_results = pipe
        .run_pipelined(&fabric, windows, &script, pipeline, &mut rng)
        .expect("pipelined run");

    assert_eq!(
        seq_results, pipe_results,
        "window results diverge (script {raw_script:?}, failures {failures:?})"
    );
    assert_eq!(
        normalize(seq_sink.events()),
        normalize(pipe_sink.events()),
        "event streams diverge (script {raw_script:?}, failures {failures:?})"
    );
    assert_eq!(seq.now_s(), pipe.now_s());
    assert_eq!(seq.epoch(), pipe.epoch());
    assert_eq!(seq.matrix().paths, pipe.matrix().paths);
    assert_eq!(seq.matrix().uncoverable, pipe.matrix().uncoverable);
}

/// Runs the same scenario full-rescore sequential (the oracle) and
/// incremental in both drivers, asserting the patched localizer changes
/// nothing: identical window results and identical normalized event
/// streams (diagnoses, and the `IngestStats` top-K accounting, match
/// mode for mode).
fn check_incremental_equivalence(
    ft: Arc<Fattree>,
    failures: &[(u16, u8, u8)],
    raw_script: &[(u8, u8, u16)],
    windows: u64,
    seed: u64,
    pipeline: &PipelineConfig,
) {
    let mut fabric = Fabric::new(ft.as_ref(), seed ^ 0xFAB);
    for &(link, kind, level) in failures {
        let (l, d) = decode_failure(&ft, link, kind, level);
        fabric.set_discipline_both(l, d);
    }
    let script = raw_script
        .iter()
        .fold(Script::new(), |s, &(window, kind, target)| {
            s.at(
                u64::from(window) % windows,
                decode_action(&ft, kind, target),
            )
        });

    let full_sink = CollectingSink::new();
    let mut full = detector(&ft, full_sink.clone());
    let mut rng = SmallRng::seed_from_u64(seed);
    let full_results = full
        .run_scripted(&fabric, windows, &script, &mut rng)
        .expect("full-rescore oracle");

    let inc_sink = CollectingSink::new();
    let mut inc = detector_with(&ft, inc_sink.clone(), incremental_config());
    let mut rng = SmallRng::seed_from_u64(seed);
    let inc_results = inc
        .run_scripted(&fabric, windows, &script, &mut rng)
        .expect("incremental sequential run");

    let pipe_sink = CollectingSink::new();
    let mut pipe = detector_with(&ft, pipe_sink.clone(), incremental_config());
    let mut rng = SmallRng::seed_from_u64(seed);
    let pipe_results = pipe
        .run_pipelined(&fabric, windows, &script, pipeline, &mut rng)
        .expect("incremental pipelined run");

    assert_eq!(
        full_results, inc_results,
        "incremental sequential diverges from the full rescore \
         (script {raw_script:?}, failures {failures:?})"
    );
    assert_eq!(
        full_results, pipe_results,
        "incremental pipelined diverges from the full rescore \
         (script {raw_script:?}, failures {failures:?})"
    );
    let oracle_events = normalize(full_sink.events());
    assert_eq!(
        oracle_events,
        normalize(inc_sink.events()),
        "incremental sequential event stream diverges"
    );
    assert_eq!(
        oracle_events,
        normalize(pipe_sink.events()),
        "incremental pipelined event stream diverges"
    );
}

/// Runs the same scenario with the sequential single-threaded oracle and
/// with component-parallel diagnosis in both drivers — plus the
/// parallel × incremental composition — asserting bit-identical window
/// results and (normalized) event streams throughout.
fn check_parallel_equivalence(
    ft: Arc<Fattree>,
    failures: &[(u16, u8, u8)],
    raw_script: &[(u8, u8, u16)],
    windows: u64,
    seed: u64,
    pipeline: &PipelineConfig,
    workers: usize,
) {
    let mut fabric = Fabric::new(ft.as_ref(), seed ^ 0xFAB);
    for &(link, kind, level) in failures {
        let (l, d) = decode_failure(&ft, link, kind, level);
        fabric.set_discipline_both(l, d);
    }
    let script = raw_script
        .iter()
        .fold(Script::new(), |s, &(window, kind, target)| {
            s.at(
                u64::from(window) % windows,
                decode_action(&ft, kind, target),
            )
        });

    let seq_sink = CollectingSink::new();
    let mut seq = detector(&ft, seq_sink.clone());
    let mut rng = SmallRng::seed_from_u64(seed);
    let seq_results = seq
        .run_scripted(&fabric, windows, &script, &mut rng)
        .expect("sequential oracle");
    let oracle_events = normalize(seq_sink.events());

    let par_sink = CollectingSink::new();
    let mut par = detector_with(&ft, par_sink.clone(), parallel_config(workers));
    let mut rng = SmallRng::seed_from_u64(seed);
    let par_results = par
        .run_scripted(&fabric, windows, &script, &mut rng)
        .expect("parallel sequential run");
    assert_eq!(
        seq_results, par_results,
        "parallel step() diverges from the sequential oracle \
         (script {raw_script:?}, failures {failures:?}, workers {workers})"
    );
    assert_eq!(
        oracle_events,
        normalize(par_sink.events()),
        "parallel step() event stream diverges (workers {workers})"
    );

    let pipe_sink = CollectingSink::new();
    let mut pipe = detector_with(&ft, pipe_sink.clone(), parallel_config(workers));
    let mut rng = SmallRng::seed_from_u64(seed);
    let pipe_results = pipe
        .run_pipelined(&fabric, windows, &script, pipeline, &mut rng)
        .expect("parallel pipelined run");
    assert_eq!(
        seq_results, pipe_results,
        "parallel pipelined diverges from the sequential oracle \
         (script {raw_script:?}, failures {failures:?}, workers {workers})"
    );
    assert_eq!(
        oracle_events,
        normalize(pipe_sink.events()),
        "parallel pipelined event stream diverges (workers {workers})"
    );

    let both_sink = CollectingSink::new();
    let mut both = detector_with(&ft, both_sink.clone(), parallel_incremental_config(workers));
    let mut rng = SmallRng::seed_from_u64(seed);
    let both_results = both
        .run_scripted(&fabric, windows, &script, &mut rng)
        .expect("parallel incremental run");
    assert_eq!(
        seq_results, both_results,
        "parallel × incremental diverges from the sequential oracle \
         (script {raw_script:?}, failures {failures:?}, workers {workers})"
    );
    assert_eq!(
        oracle_events,
        normalize(both_sink.events()),
        "parallel × incremental event stream diverges (workers {workers})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The core property: any loss pattern + churn/health script +
    /// cycle refreshes ⇒ pipelined ≡ sequential, events and results.
    #[test]
    fn pipelined_equals_sequential(
        failures in proptest::collection::vec((0u16..64, 0u8..3, 0u8..8), 0..3),
        raw_script in proptest::collection::vec((0u8..6, 0u8..6, 0u16..64), 0..6),
        seed in 0u64..1_000,
        workers in 1usize..5,
        depth in 1usize..4,
    ) {
        let ft = Arc::new(Fattree::new(4).unwrap());
        let pipeline = PipelineConfig { probe_workers: workers, depth };
        // 5 windows at cycle_s = 60 ⇒ refreshes inside the run at
        // windows 2 and 4.
        check_equivalence(ft, &failures, &raw_script, 5, seed, &pipeline);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Incremental ≡ full: with `PllConfig::incremental` the patched
    /// localizer produces exactly the full-rescore diagnosis — results
    /// and event streams — under loss × churn × cycle refresh, in both
    /// the sequential and pipelined drivers. Churn and the short cycle
    /// exercise the fallback-to-rebuild paths; stable stretches
    /// exercise the patch path.
    #[test]
    fn incremental_localization_equals_full(
        failures in proptest::collection::vec((0u16..64, 0u8..3, 0u8..8), 0..3),
        raw_script in proptest::collection::vec((0u8..6, 0u8..6, 0u16..64), 0..6),
        seed in 0u64..1_000,
        workers in 1usize..5,
    ) {
        let ft = Arc::new(Fattree::new(4).unwrap());
        let pipeline = PipelineConfig { probe_workers: workers, depth: 2 };
        check_incremental_equivalence(ft, &failures, &raw_script, 5, seed, &pipeline);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Component-parallel ≡ sequential: with `parallel_components > 1`
    /// the fanned-out per-component PLL produces exactly the
    /// single-threaded diagnosis — results and event streams — in both
    /// drivers and composed with the incremental skeleton cache, under
    /// loss × churn × cycle refresh. Random churn splits and merges the
    /// lossy component structure mid-run (drains and link flaps move
    /// paths between islands); the targeted
    /// `component_merge_and_split_stays_equivalent` below pins a
    /// deterministic 2 → 1 → 2 transition.
    #[test]
    fn parallel_diagnosis_equals_sequential(
        failures in proptest::collection::vec((0u16..64, 0u8..3, 0u8..8), 0..4),
        raw_script in proptest::collection::vec((0u8..6, 0u8..6, 0u16..64), 0..6),
        seed in 0u64..1_000,
        workers in 2usize..5,
    ) {
        let ft = Arc::new(Fattree::new(4).unwrap());
        let pipeline = PipelineConfig { probe_workers: 2, depth: 2 };
        check_parallel_equivalence(ft, &failures, &raw_script, 5, seed, &pipeline, workers);
    }
}

#[test]
fn cell_overflow_rebase_redispatches_only_the_touched_cell() {
    // The re-base regression: a detector born with a link offline under
    // a zero-headroom id policy must re-base the touched cell when the
    // link comes back (the pristine solution outgrows the restricted
    // range). Only that cell's pinglists re-dispatch, its ids stay dense
    // within the fresh range, and every other cell is bit-identical.
    let ft = Arc::new(Fattree::new(4).unwrap());
    let dead = ft.ac_link(0, 0, 0);
    let cfg = SystemConfig {
        id_headroom: IdHeadroom::NONE,
        ..SystemConfig::default()
    };
    let mut run = Detector::builder(ft.clone() as SharedTopology)
        .config(cfg)
        .offline_links([dead])
        .build()
        .expect("degraded boot");

    let (ranges, touched) = {
        let plan = run.probe_plan().expect("plan built at boot");
        (plan.cell_ranges(), plan.cells_touching(&[dead]))
    };
    assert_eq!(touched.len(), 1, "an ac link lives in exactly one cell");
    let before_paths = run.matrix().paths.clone();
    let before_lists: Vec<Pinglist> = run.pinglists().to_vec();
    let id_ceiling = ranges.iter().map(|r| r.end()).max().unwrap();

    let update = run.apply(&TopologyEvent::LinkUp { link: dead }).unwrap();
    assert_eq!(
        update.stats.cells_rebased, 1,
        "restore must overflow the zero-headroom range: {update:?}"
    );

    let after_ranges = run.probe_plan().unwrap().cell_ranges();
    let fresh = after_ranges[touched[0]];
    assert!(
        fresh.base >= id_ceiling,
        "fresh range must sit past every retired id"
    );
    // Untouched cells: ranges and paths bit-identical.
    let after = run.matrix().clone();
    for (i, r) in ranges.iter().enumerate() {
        if i == touched[0] {
            continue;
        }
        assert_eq!(after_ranges[i], *r, "untouched cell {i} range moved");
        for p in before_paths.iter().filter(|p| r.contains(p.id)) {
            assert_eq!(after.path(p.id), Some(p), "untouched path {} changed", p.id);
        }
    }
    // Re-based cell: ids dense within the fresh range, retired ids dead.
    let rebased: Vec<_> = after
        .paths
        .iter()
        .filter(|p| fresh.contains(p.id))
        .collect();
    assert!(!rebased.is_empty());
    for (i, p) in rebased.iter().enumerate() {
        assert_eq!(p.id, fresh.id(i), "re-based ids must be dense in range");
    }
    for p in before_paths
        .iter()
        .filter(|p| ranges[touched[0]].contains(p.id))
    {
        assert!(
            after.path(p.id).is_none(),
            "retired id {} still resolves",
            p.id
        );
    }
    // Only the touched cell's pinglists re-dispatched.
    let mut redispatched = 0usize;
    for list in run.pinglists() {
        match before_lists.iter().find(|l| l.pinger == list.pinger) {
            Some(old) if old.same_assignment(list) => {
                assert_eq!(old.version, list.version);
            }
            other => {
                redispatched += 1;
                let touched_ref = other
                    .iter()
                    .flat_map(|l| &l.entries)
                    .chain(&list.entries)
                    .filter_map(|e| e.path)
                    .any(|pid| ranges[touched[0]].contains(pid) || fresh.contains(pid));
                assert!(
                    touched_ref,
                    "list of {} re-dispatched without touched-cell paths",
                    list.pinger
                );
            }
        }
    }
    assert_eq!(update.lists_redispatched, redispatched);
    assert!(redispatched > 0, "a re-base must re-dispatch the moved ids");
    // (At k = 4 both cells' paths blanket every pinger, so a strict
    // subset is impossible here; `fattree16_single_cell_delta_...` in
    // tests/live_topology.rs asserts untouched lists survive at scale.)

    // And run_pipelined ≡ run_scripted still holds across the re-base:
    // same degraded boot, the LinkUp scripted mid-run, loss on the wire.
    let script = Script::new()
        .topology(1, TopologyEvent::LinkUp { link: dead })
        .topology(3, TopologyEvent::LinkDown { link: dead });
    let mut fabric = Fabric::new(ft.as_ref(), 0xCE11);
    fabric.set_discipline_both(
        ft.ea_link(2, 1, 0),
        LossDiscipline::RandomPartial { rate: 0.4 },
    );
    let boot = |sink: CollectingSink| {
        Detector::builder(ft.clone() as SharedTopology)
            .config(SystemConfig {
                id_headroom: IdHeadroom::NONE,
                cycle_s: 60,
                ..SystemConfig::default()
            })
            .offline_links([dead])
            .sink(Box::new(sink))
            .build()
            .expect("degraded boot")
    };

    let seq_sink = CollectingSink::new();
    let mut seq = boot(seq_sink.clone());
    let mut rng = SmallRng::seed_from_u64(0xAB);
    let a = seq.run_scripted(&fabric, 5, &script, &mut rng).unwrap();

    let pipe_sink = CollectingSink::new();
    let mut pipe = boot(pipe_sink.clone());
    let mut rng = SmallRng::seed_from_u64(0xAB);
    let b = pipe
        .run_pipelined(&fabric, 5, &script, &PipelineConfig::default(), &mut rng)
        .unwrap();

    assert_eq!(a, b, "window results diverge across the re-base");
    assert_eq!(normalize(seq_sink.events()), normalize(pipe_sink.events()));
    assert_eq!(seq.matrix().paths, pipe.matrix().paths);
    // The re-base really happened inside the runs: the scripted LinkUp's
    // PlanUpdated re-dispatched a strict, non-zero subset of the lists.
    let redispatch_counts: Vec<usize> = seq_sink
        .events()
        .into_iter()
        .filter_map(|e| match e {
            RuntimeEvent::PlanUpdated {
                lists_redispatched, ..
            } => Some(lists_redispatched),
            _ => None,
        })
        .collect();
    assert_eq!(redispatch_counts.len(), 2);
    assert!(redispatch_counts[0] > 0);
}

#[test]
fn cycle_boundary_refreshes_survive_the_pipeline() {
    // A targeted regression for the refresh path: no churn, no loss —
    // just the controller cycle. Both runs must emit identical
    // CycleRefreshed events (same windows, same versions).
    let ft = Arc::new(Fattree::new(4).unwrap());
    let fabric = Fabric::quiet(ft.as_ref());

    let seq_sink = CollectingSink::new();
    let mut seq = detector(&ft, seq_sink.clone());
    let mut rng = SmallRng::seed_from_u64(7);
    seq.run_scripted(&fabric, 6, &Script::new(), &mut rng)
        .unwrap();

    let pipe_sink = CollectingSink::new();
    let mut pipe = detector(&ft, pipe_sink.clone());
    let mut rng = SmallRng::seed_from_u64(7);
    pipe.run_pipelined(
        &fabric,
        6,
        &Script::new(),
        &PipelineConfig::default(),
        &mut rng,
    )
    .unwrap();

    let refreshes = |events: Vec<RuntimeEvent>| -> Vec<(u64, u64)> {
        events
            .into_iter()
            .filter_map(|e| match e {
                RuntimeEvent::CycleRefreshed {
                    window, version, ..
                } => Some((window, version)),
                _ => None,
            })
            .collect()
    };
    let seq_refreshes = refreshes(seq_sink.events());
    assert_eq!(
        seq_refreshes.iter().map(|(w, _)| *w).collect::<Vec<_>>(),
        vec![2, 4],
        "cycle_s = 60 must refresh exactly at windows 2 and 4"
    );
    assert_eq!(seq_refreshes, refreshes(pipe_sink.events()));
}

#[test]
fn unhealthy_pinger_is_skipped_identically() {
    // Kill one pinger mid-run and revive it: both runtimes must emit the
    // same PingerUnhealthy events and exclude the same reports.
    let ft = Arc::new(Fattree::new(4).unwrap());
    let fabric = Fabric::new(ft.as_ref(), 21);
    let victim = ft.server(0, 0, 0);
    let script = Script::new()
        .mark_unhealthy(1, victim)
        .mark_healthy(3, victim);

    let seq_sink = CollectingSink::new();
    let mut seq = detector(&ft, seq_sink.clone());
    let mut rng = SmallRng::seed_from_u64(13);
    let a = seq.run_scripted(&fabric, 4, &script, &mut rng).unwrap();

    let pipe_sink = CollectingSink::new();
    let mut pipe = detector(&ft, pipe_sink.clone());
    let mut rng = SmallRng::seed_from_u64(13);
    let b = pipe
        .run_pipelined(&fabric, 4, &script, &PipelineConfig::default(), &mut rng)
        .unwrap();

    assert_eq!(a, b);
    let unhealthy = |events: Vec<RuntimeEvent>| -> Vec<(u64, NodeId)> {
        events
            .into_iter()
            .filter_map(|e| match e {
                RuntimeEvent::PingerUnhealthy { window, pinger } => Some((window, pinger)),
                _ => None,
            })
            .collect()
    };
    let seq_unhealthy = unhealthy(seq_sink.events());
    assert_eq!(seq_unhealthy, unhealthy(pipe_sink.events()));
    // Window 1: the victim is still on the roster and is skipped with an
    // event. Window 2 sits on a cycle boundary (cycle_s = 60), so the
    // refreshed deployment drops the unhealthy server from pinger duty
    // entirely — no event, it simply is not dispatched.
    assert_eq!(seq_unhealthy, vec![(1, victim)]);
}

/// Extracts each window's `DiagStats` as `(window, lossy_paths,
/// components, suspects)`.
fn diag_stats(events: Vec<RuntimeEvent>) -> Vec<(u64, u64, u64, u64)> {
    events
        .into_iter()
        .filter_map(|e| match e {
            RuntimeEvent::DiagStats {
                window,
                lossy_paths,
                components,
                suspects,
            } => Some((window, lossy_paths, components, suspects)),
            _ => None,
        })
        .collect()
}

#[test]
fn component_merge_and_split_stays_equivalent() {
    // Two same-pod edge–agg failures sit in disjoint lossy components
    // (no observed path crosses both). Draining agg(0,0) at window 1
    // removes ea(0,0,0) from the plan — its island vanishes and the
    // window collapses to one component — and the undrain at window 3
    // brings the bridge links back up, splitting the structure into two
    // components again. Both transitions land mid-run on plan-epoch
    // changes, so the cached per-component skeleton must rebuild (a
    // stale partition would fan out the wrong islands and diverge from
    // the oracle).
    let ft = Arc::new(Fattree::new(4).unwrap());
    let failures: Vec<LinkId> = vec![ft.ea_link(0, 0, 0), ft.ea_link(0, 1, 1)];
    let script = Script::new()
        .topology(
            1,
            TopologyEvent::SwitchDrain {
                switch: ft.agg(0, 0),
            },
        )
        .topology(
            3,
            TopologyEvent::SwitchUndrain {
                switch: ft.agg(0, 0),
            },
        );
    let mut fabric = Fabric::new(ft.as_ref(), 0xFAB);
    for l in &failures {
        fabric.set_discipline_both(*l, LossDiscipline::Full);
    }

    let seq_sink = CollectingSink::new();
    let mut seq = detector(&ft, seq_sink.clone());
    let mut rng = SmallRng::seed_from_u64(7);
    let seq_results = seq.run_scripted(&fabric, 5, &script, &mut rng).unwrap();

    for cfg in [parallel_config(4), parallel_incremental_config(4)] {
        let par_sink = CollectingSink::new();
        let mut par = detector_with(&ft, par_sink.clone(), cfg);
        let mut rng = SmallRng::seed_from_u64(7);
        let par_results = par.run_scripted(&fabric, 5, &script, &mut rng).unwrap();
        assert_eq!(seq_results, par_results);
        assert_eq!(normalize(seq_sink.events()), normalize(par_sink.events()));
        // The component structure really merged and split mid-run.
        assert_eq!(
            diag_stats(par_sink.events())
                .iter()
                .map(|&(_, _, c, _)| c)
                .collect::<Vec<_>>(),
            vec![2, 1, 1, 2, 2],
            "the drain/undrain must merge then split the lossy components"
        );
    }

    // And the pipelined driver rides the fan-out through its worker
    // channel across the same transitions.
    let pipe_sink = CollectingSink::new();
    let mut pipe = detector_with(&ft, pipe_sink.clone(), parallel_config(4));
    let mut rng = SmallRng::seed_from_u64(7);
    let pipe_results = pipe
        .run_pipelined(&fabric, 5, &script, &PipelineConfig::default(), &mut rng)
        .unwrap();
    assert_eq!(seq_results, pipe_results);
    assert_eq!(normalize(seq_sink.events()), normalize(pipe_sink.events()));
}

#[test]
fn udp_pipelined_equals_sequential() {
    // The equivalence invariant survives real sockets: the same scenario
    // driven over the UDP loopback data plane — actual datagrams, real
    // responder threads, kernel timestamps — produces identical window
    // results and event streams sequentially and pipelined. This works
    // because the only nondeterminism a real wire adds is RTT variance
    // (invisible to results/events) and genuine loss (suppressed by the
    // retry schedule); the injected-loss shim is a pure function of
    // (seed, window, path_id), so both drivers drop exactly the same
    // probes.
    let ft = Arc::new(Fattree::new(4).unwrap());
    let cfg = SystemConfig {
        cycle_s: 60,
        probe_rate_pps: 0.2, // 6 probes per pinger-window keeps CI fast.
        ..SystemConfig::default()
    };
    let clock = Arc::new(HostClock::new());
    let harness = UdpHarness::spawn(4, cfg.dport, clock).expect("harness");
    let plane = harness
        .dataplane(&UdpConfig::default(), Some(LossShim::new(0xD07, 150)))
        .expect("udp plane");
    let script = Script::new()
        .topology(1, TopologyEvent::LinkDown { link: LinkId(3) })
        .topology(3, TopologyEvent::LinkUp { link: LinkId(3) });

    let seq_sink = CollectingSink::new();
    let mut seq = detector_with(&ft, seq_sink.clone(), cfg.clone());
    let mut rng = SmallRng::seed_from_u64(0x11D);
    let a = seq.run_scripted(&plane, 5, &script, &mut rng).unwrap();

    let pipe_sink = CollectingSink::new();
    let mut pipe = detector_with(&ft, pipe_sink.clone(), cfg);
    let mut rng = SmallRng::seed_from_u64(0x11D);
    let b = pipe
        .run_pipelined(
            &plane,
            5,
            &script,
            &PipelineConfig {
                probe_workers: 4,
                depth: 3,
            },
            &mut rng,
        )
        .unwrap();

    assert_eq!(a, b, "UDP window results diverge between drivers");
    assert_eq!(
        normalize(seq_sink.events()),
        normalize(pipe_sink.events()),
        "UDP event streams diverge between drivers"
    );
    assert_eq!(seq.now_s(), pipe.now_s());
    assert_eq!(seq.matrix().paths, pipe.matrix().paths);

    // The run really exercised the wire and the shim.
    let stats = plane.stats();
    assert!(stats.delivered > 0, "no probe crossed the loopback");
    assert!(stats.shim_dropped > 0, "the loss shim never fired");
    assert!(
        stats.kernel_stamped + stats.mono_stamped == stats.delivered,
        "every delivery must be stamped exactly once"
    );
    assert!(harness.stats().echoed > 0);
}

#[test]
fn all_healthy_windows_short_circuit_identically() {
    // Zero lossy paths: every window of a quiet fabric must
    // short-circuit to an empty component set — DiagStats reports zero
    // components — while still emitting DiagnosisReady with empty
    // suspects in the exact oracle position, and without invalidating
    // the incremental skeleton (stream equality across the
    // parallel × incremental composition would break if the clean
    // windows forced rebuild-induced divergence).
    let ft = Arc::new(Fattree::new(4).unwrap());
    let fabric = Fabric::quiet(ft.as_ref());

    let seq_sink = CollectingSink::new();
    let mut seq = detector(&ft, seq_sink.clone());
    let mut rng = SmallRng::seed_from_u64(3);
    let seq_results = seq
        .run_scripted(&fabric, 4, &Script::new(), &mut rng)
        .unwrap();

    for cfg in [parallel_config(4), parallel_incremental_config(4)] {
        let par_sink = CollectingSink::new();
        let mut par = detector_with(&ft, par_sink.clone(), cfg);
        let mut rng = SmallRng::seed_from_u64(3);
        let par_results = par
            .run_scripted(&fabric, 4, &Script::new(), &mut rng)
            .unwrap();
        assert_eq!(seq_results, par_results);
        assert_eq!(normalize(seq_sink.events()), normalize(par_sink.events()));
        assert_eq!(
            diag_stats(par_sink.events()),
            vec![(0, 0, 0, 0), (1, 0, 0, 0), (2, 0, 0, 0), (3, 0, 0, 0)],
            "all-healthy windows must report zero lossy paths and components"
        );
        // Each window still reaches an (empty) diagnosis, directly
        // after its stats events.
        let events = par_sink.events();
        for w in 0..4u64 {
            let stats_at = events
                .iter()
                .position(|e| matches!(e, RuntimeEvent::DiagStats { window, .. } if *window == w))
                .expect("DiagStats present");
            match events.get(stats_at + 1) {
                Some(RuntimeEvent::DiagnosisReady(res)) => {
                    assert_eq!(res.window, w);
                    assert!(res.diagnosis.is_clean(), "quiet window must diagnose clean");
                }
                other => panic!("DiagStats must immediately precede DiagnosisReady, got {other:?}"),
            }
        }
    }
}
