//! Soak/stress test for the pipelined scheduler: a long churny run that
//! must complete without deadlock, without losing events, and with
//! strictly monotone window ids.
//!
//! The full soak (`soak_200_windows_fattree8`, `#[ignore]`-gated) drives
//! 200 pipelined windows on Fattree(8) under a rolling [`ChurnSchedule`]
//! whose events hit both the probe plan (scripted through the
//! incremental re-planner) and the live fabric (applied inside the data
//! plane's `window_started` hook behind an `RwLock`, concurrently with
//! in-flight probe batches). The fast mode (`soak_fast_mode`) runs the
//! same machinery at CI scale — Fattree(4), 48 windows — in the normal
//! test job.
//!
//! Run the full soak with:
//! `cargo test --release --test scheduler_soak -- --ignored`

use std::sync::RwLock;

use detector::prelude::*;
use detector::simnet::ChurnSchedule;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A fabric that applies its churn schedule inside the data-plane
/// `window_started` hook — so fabric state changes land mid-pipeline,
/// while older windows' probe batches are still in flight.
struct ChurnFabric<'a> {
    inner: RwLock<Fabric<'a>>,
    schedule: ChurnSchedule,
}

impl DataPlane for ChurnFabric<'_> {
    fn probe(&self, route: &Route, flow: FlowKey, rng: &mut rand::rngs::SmallRng) -> ProbeOutcome {
        let fabric = self.inner.read().expect("fabric lock");
        let rt = fabric.round_trip(route, flow, rng);
        ProbeOutcome {
            delivered: rt.success,
            rtt_us: rt.rtt_us,
        }
    }

    fn window_started(&self, window: u64, _start_s: u64) {
        let mut fabric = self.inner.write().expect("fabric lock");
        for ev in self.schedule.due(window) {
            ChurnSchedule::apply_to_fabric(&mut fabric, ev);
        }
    }
}

/// A rolling drain/recover schedule: every `period` windows another
/// link goes down for half a period, cycling through the given victims.
fn rolling_churn(victims: &[LinkId], windows: u64, period: u64) -> ChurnSchedule {
    let mut schedule = ChurnSchedule::new();
    let mut v = 0usize;
    let mut w = period;
    while w + period / 2 < windows {
        let link = victims[v % victims.len()];
        schedule = schedule
            .at(w, TopologyEvent::LinkDown { link })
            .at(w + period / 2, TopologyEvent::LinkUp { link });
        v += 1;
        w += period;
    }
    schedule
}

/// The soak body: runs `windows` pipelined windows on `ft` under the
/// given churn, then checks completion, monotonicity and event
/// integrity.
fn soak(ft: Arc<Fattree>, windows: u64, churn: ChurnSchedule, pipeline: PipelineConfig) {
    // Plan-side churn: the same schedule scripted through the
    // incremental re-planner.
    let script = Script::from_topology_events(churn.events().iter().map(|e| (e.window, e.event)));
    // Fabric-side churn: applied concurrently from the window_started
    // hook.
    let dataplane = ChurnFabric {
        inner: RwLock::new(Fabric::new(ft.as_ref(), 0x50AC)),
        schedule: churn,
    };

    let collector = CollectingSink::new();
    let mut run = Detector::builder(ft.clone() as SharedTopology)
        .config(SystemConfig {
            // Refresh cycles fire every 4 windows, exercising the
            // refresh path under load.
            cycle_s: 120,
            ..SystemConfig::default()
        })
        .sink(Box::new(collector.clone()))
        .build()
        .expect("boot");
    let mut rng = SmallRng::seed_from_u64(0x50AC);

    let results = run
        .run_pipelined(&dataplane, windows, &script, &pipeline, &mut rng)
        .expect("pipelined soak run");

    assert_soak_integrity(&results, &collector.events(), windows, script.len());
}

/// The soak assertions: completion, monotone ids, event-stream
/// integrity, and plan-update accounting — shared by the simulated and
/// UDP soak arms.
fn assert_soak_integrity(
    results: &[WindowResult],
    events: &[RuntimeEvent],
    windows: u64,
    scripted_changes: usize,
) {
    // Completion: every window produced a result (no deadlock — the
    // test finishing at all is the deadlock assertion — and no window
    // dropped).
    assert_eq!(results.len() as u64, windows);

    // Monotone window ids, consistent clocks, probes actually sent.
    for (i, w) in results.iter().enumerate() {
        assert_eq!(w.window, i as u64, "window ids must be dense and ordered");
        assert_eq!(w.start_s, i as u64 * 30, "window start times must stack");
        assert!(w.probes_sent > 0, "window {i} sent no probes");
    }

    // Event integrity: per window exactly one WindowStarted and one
    // DiagnosisReady, in order, with every intermediate event belonging
    // to the window that is currently open (no event loss, no
    // interleaving across windows).
    let mut open: Option<u64> = None;
    let mut next_window = 0u64;
    let mut diagnoses = 0u64;
    for e in events {
        match e {
            RuntimeEvent::WindowStarted { window, .. } => {
                assert_eq!(open, None, "window {window} opened inside another");
                assert_eq!(*window, next_window, "windows must open in order");
                open = Some(*window);
            }
            RuntimeEvent::DiagnosisReady(res) => {
                assert_eq!(open, Some(res.window), "diagnosis for a window not open");
                open = None;
                next_window += 1;
                diagnoses += 1;
            }
            RuntimeEvent::CycleRefreshed { window, .. }
            | RuntimeEvent::ReportIngested { window, .. }
            | RuntimeEvent::IngestStats { window, .. }
            | RuntimeEvent::DiagStats { window, .. }
            | RuntimeEvent::PingerUnhealthy { window, .. } => {
                assert_eq!(open, Some(*window), "intermediate event outside its window");
            }
            RuntimeEvent::PlanUpdated { .. } => {
                assert_eq!(open, None, "plan updates land between windows");
            }
        }
    }
    assert_eq!(open, None, "a window was left open at the end of the run");
    assert_eq!(diagnoses, windows, "every window must reach diagnosis");

    // Every scripted plan change surfaced in the stream.
    let plan_updates = events
        .iter()
        .filter(|e| matches!(e, RuntimeEvent::PlanUpdated { .. }))
        .count();
    assert_eq!(
        plan_updates, scripted_changes,
        "a PlanUpdated event was lost"
    );
}

/// CI-scale fast mode: same machinery, smaller fabric and fewer windows.
#[test]
fn soak_fast_mode() {
    let ft = Arc::new(Fattree::new(4).unwrap());
    let victims = vec![
        ft.ea_link(0, 0, 0),
        ft.ac_link(1, 0, 1),
        ft.ea_link(2, 1, 0),
    ];
    let windows = 48;
    soak(
        ft,
        windows,
        rolling_churn(&victims, windows, 8),
        PipelineConfig {
            probe_workers: 4,
            depth: 3,
        },
    );
}

/// The soak body over real sockets: plan-side churn scripted through
/// the re-planner while every probe crosses the kernel loopback stack
/// as an actual datagram, with deterministic injected loss at the
/// harness boundary. Fabric-side churn does not apply (there is no
/// fabric); the wire contributes real RTTs, real echo threads and the
/// retry machinery instead.
fn soak_udp(
    ft: Arc<Fattree>,
    windows: u64,
    churn: ChurnSchedule,
    pipeline: PipelineConfig,
    drop_per_mille: u16,
) {
    let script = Script::from_topology_events(churn.events().iter().map(|e| (e.window, e.event)));
    let cfg = SystemConfig {
        cycle_s: 120,
        probe_rate_pps: 0.2, // 6 probes per pinger-window keeps CI fast.
        ..SystemConfig::default()
    };
    let clock = Arc::new(HostClock::new());
    let harness = UdpHarness::spawn(4, cfg.dport, clock).expect("harness");
    let dataplane = harness
        .dataplane(
            &UdpConfig::default(),
            Some(LossShim::new(0x50AC, drop_per_mille)),
        )
        .expect("udp plane");

    let collector = CollectingSink::new();
    let mut run = Detector::builder(ft.clone() as SharedTopology)
        .config(cfg)
        .sink(Box::new(collector.clone()))
        .build()
        .expect("boot");
    let mut rng = SmallRng::seed_from_u64(0x50AC);

    let results = run
        .run_pipelined(&dataplane, windows, &script, &pipeline, &mut rng)
        .expect("pipelined UDP soak run");

    assert_soak_integrity(&results, &collector.events(), windows, script.len());

    // The soak really rode the wire: deliveries, shim drops, echoes.
    let stats = dataplane.stats();
    assert!(stats.delivered > 0, "no probe crossed the loopback");
    assert!(stats.shim_dropped > 0, "the loss shim never fired");
    assert_eq!(
        stats.kernel_stamped + stats.mono_stamped,
        stats.delivered,
        "every delivery must be stamped exactly once"
    );
    assert!(harness.stats().echoed > 0);
    assert_eq!(harness.stats().corrupt, 0, "loopback corrupted a probe");
}

/// CI-scale UDP soak: the fast-mode scenario over real sockets.
#[test]
fn udp_soak_fast_mode() {
    let ft = Arc::new(Fattree::new(4).unwrap());
    let victims = vec![
        ft.ea_link(0, 0, 0),
        ft.ac_link(1, 0, 1),
        ft.ea_link(2, 1, 0),
    ];
    let windows = 48;
    soak_udp(
        ft,
        windows,
        rolling_churn(&victims, windows, 8),
        PipelineConfig {
            probe_workers: 4,
            depth: 3,
        },
        150,
    );
}

/// The full 200-window soak on Fattree(8).
#[test]
#[ignore = "long soak; run with --ignored (CI runs it in the scheduler smoke job)"]
fn soak_200_windows_fattree8() {
    let ft = Arc::new(Fattree::new(8).unwrap());
    let victims = vec![
        ft.ea_link(0, 0, 0),
        ft.ac_link(3, 1, 2),
        ft.ea_link(5, 2, 1),
        ft.ac_link(7, 0, 3),
        ft.ea_link(2, 3, 0),
    ];
    let windows = 200;
    soak(
        ft,
        windows,
        rolling_churn(&victims, windows, 10),
        PipelineConfig {
            probe_workers: 6,
            depth: 4,
        },
    );
}
