//! The scenario harness proving the distributed control plane
//! equivalent to the single-process `run_scripted` oracle.
//!
//! `DistributedDetector::run_distributed` drives a fleet of
//! `PingerAgent`s over loopback transports: pinglists travel as
//! per-entry wire diffs, reports stream back as frames, and dead agents
//! degrade to `PingerUnhealthy` racks. This harness asserts that under
//! arbitrary combinations of
//!
//! * **loss** — random per-link disciplines on the fabric,
//! * **churn** — scripted `TopologyEvent`s re-planning mid-run,
//! * **agent failure** — scripted `AgentDown`/`AgentUp` (whole host
//!   groups) and server-granular health marks,
//! * **cycle-boundary refreshes** — a short controller cycle,
//!
//! the distributed run produces exactly the per-window results and the
//! same totally ordered `RuntimeEvent` stream as the sequential oracle
//! driven by `DistScript::oracle`'s expansion of the same script — the
//! only tolerated difference being the wall-clock `replan_micros` field
//! of `PlanUpdated`.
//!
//! The crash-point sweep additionally kills one agent's transport after
//! an arbitrary number of sends — so the crash lands at every point of
//! the wire protocol: before `Hello`, at a heartbeat ack, mid-report
//! stream, between windows — and asserts the degraded run equals the
//! oracle that marked the victim's racks unhealthy at the window where
//! the crash surfaced.

use std::sync::Arc;

use detector::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A short cycle (two 30-second windows) so refreshes fire mid-run.
fn config() -> SystemConfig {
    let mut cfg = SystemConfig {
        cycle_s: 60,
        ..SystemConfig::default()
    };
    // The distributed tier's production setting: churn-minimizing seeded
    // re-solves. Both sides of every equivalence check share it, so the
    // whole loss × churn × crash matrix runs against the seeded planner.
    cfg.pmc.stable_patch = true;
    cfg
}

/// The same config with incremental PLL switched on (the controller
/// tier's patched localizer).
fn incremental_config() -> SystemConfig {
    let mut cfg = config();
    cfg.pll = cfg.pll.incremental();
    cfg
}

fn sample_server(ft: &Fattree, target: u16) -> NodeId {
    let t = u32::from(target);
    let k = ft.k();
    let half = ft.half();
    ft.server(t % k, (t / k) % half, (t / (k * half)) % half)
}

/// Decodes one raw `(kind, target)` pair into a distributed action.
/// Small target ranges make down/up and unhealthy/healthy collisions
/// likely.
fn decode_action(ft: &Fattree, agents: usize, kind: u8, target: u16) -> DistAction {
    let probe_links = ft.probe_links() as u32;
    let switches = ft.graph().num_switches() as u32;
    match kind % 8 {
        0 => DistAction::Topology(TopologyEvent::LinkDown {
            link: LinkId(u32::from(target) % probe_links),
        }),
        1 => DistAction::Topology(TopologyEvent::LinkUp {
            link: LinkId(u32::from(target) % probe_links),
        }),
        2 => DistAction::Topology(TopologyEvent::SwitchDrain {
            switch: NodeId(u32::from(target) % switches),
        }),
        3 => DistAction::Topology(TopologyEvent::SwitchUndrain {
            switch: NodeId(u32::from(target) % switches),
        }),
        4 => DistAction::MarkUnhealthy(sample_server(ft, target)),
        5 => DistAction::MarkHealthy(sample_server(ft, target)),
        6 => DistAction::AgentDown(usize::from(target) % agents),
        _ => DistAction::AgentUp(usize::from(target) % agents),
    }
}

/// Decodes a raw failure triple into a fabric loss discipline.
fn decode_failure(ft: &Fattree, link: u16, kind: u8, level: u8) -> (LinkId, LossDiscipline) {
    let l = LinkId(u32::from(link) % ft.probe_links() as u32);
    let disc = match kind % 3 {
        0 => LossDiscipline::Full,
        1 => LossDiscipline::RandomPartial {
            rate: 0.1 + f64::from(level % 8) / 10.0,
        },
        _ => LossDiscipline::DeterministicPartial {
            fraction: 0.2 + f64::from(level % 6) / 10.0,
            salt: u64::from(level),
        },
    };
    (l, disc)
}

/// Zeroes the wall-clock fields (`RuntimeEvent::normalized`) so streams
/// from different executions compare equal.
fn normalize(events: Vec<RuntimeEvent>) -> Vec<RuntimeEvent> {
    events.iter().map(RuntimeEvent::normalized).collect()
}

/// Runs the same scenario distributed and sequentially (over the
/// oracle expansion), asserting equal window results, equal
/// (normalized) event streams, and equal final state.
fn check_equivalence(
    ft: Arc<Fattree>,
    failures: &[(u16, u8, u8)],
    raw_script: &[(u8, u8, u16)],
    agents: usize,
    windows: u64,
    seed: u64,
) -> DistOutcome {
    let mut fabric = Fabric::new(ft.as_ref(), seed ^ 0xFAB);
    for &(link, kind, level) in failures {
        let (l, d) = decode_failure(&ft, link, kind, level);
        fabric.set_discipline_both(l, d);
    }
    let script = raw_script
        .iter()
        .fold(DistScript::new(), |s, &(window, kind, target)| {
            s.at(
                u64::from(window) % windows,
                decode_action(&ft, agents, kind, target),
            )
        });

    let dist_sink = CollectingSink::new();
    let mut dist = DistributedDetector::new(ft.clone() as SharedTopology, config(), agents)
        .expect("boot distributed");
    dist.add_sink(Box::new(dist_sink.clone()));
    let mut rng = SmallRng::seed_from_u64(seed);
    let outcome = dist
        .run_distributed(&fabric, windows, &script, &mut rng)
        .expect("distributed run");

    let seq_sink = CollectingSink::new();
    let mut seq = Detector::builder(ft.clone() as SharedTopology)
        .config(config())
        .sink(Box::new(seq_sink.clone()))
        .build()
        .expect("boot oracle");
    let mut rng = SmallRng::seed_from_u64(seed);
    let oracle = script.oracle(dist.groups());
    let seq_results = seq
        .run_scripted(&fabric, windows, &oracle, &mut rng)
        .expect("sequential oracle");

    assert_eq!(
        seq_results, outcome.results,
        "window results diverge (script {raw_script:?}, failures {failures:?})"
    );
    assert_eq!(
        normalize(seq_sink.events()),
        normalize(dist_sink.events()),
        "event streams diverge (script {raw_script:?}, failures {failures:?})"
    );
    assert_eq!(seq.now_s(), dist.now_s());
    assert_eq!(seq.epoch(), dist.epoch());
    assert_eq!(seq.matrix().paths, dist.matrix().paths);
    assert_eq!(seq.matrix().uncoverable, dist.matrix().uncoverable);
    outcome
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The core property: any loss pattern + churn/health/agent-failure
    /// script + cycle refreshes ⇒ distributed ≡ sequential, events and
    /// results, with ≥4 agents.
    #[test]
    fn distributed_equals_sequential(
        failures in proptest::collection::vec((0u16..64, 0u8..3, 0u8..8), 0..3),
        raw_script in proptest::collection::vec((0u8..6, 0u8..8, 0u16..64), 0..6),
        seed in 0u64..1_000,
        agents in 4usize..7,
    ) {
        let ft = Arc::new(Fattree::new(4).unwrap());
        // 5 windows at cycle_s = 60 ⇒ refreshes inside the run at
        // windows 2 and 4.
        check_equivalence(ft, &failures, &raw_script, agents, 5, seed);
    }

    /// Crash-point sweep: one agent's transport dies after `budget`
    /// sends — landing the crash at every point of the protocol
    /// (`Hello`, heartbeat acks, mid-report stream, between windows).
    /// Wherever it lands, the run degrades to exactly the oracle that
    /// marked the victim's racks unhealthy at the window where the
    /// crash surfaced, and never stalls. (Default 600 s cycle: no
    /// refresh coincides with the crash, per the documented caveat.)
    #[test]
    fn a_crash_at_any_protocol_point_degrades_to_the_oracle(
        budget in 0usize..16,
        victim in 0usize..4,
        seed in 0u64..1_000,
    ) {
        let ft = Arc::new(Fattree::new(4).unwrap());
        let fabric = Fabric::new(ft.as_ref(), seed ^ 0xFAB);
        let windows = 3u64;

        let dist_sink = CollectingSink::new();
        let mut dist = DistributedDetector::new(
            ft.clone() as SharedTopology,
            SystemConfig::default(),
            4,
        )
        .expect("boot distributed");
        dist.add_sink(Box::new(dist_sink.clone()));
        let mut rng = SmallRng::seed_from_u64(seed);
        let outcome = dist
            .run_distributed_with_faults(
                &fabric,
                windows,
                &DistScript::new(),
                &[(victim, budget)],
                &mut rng,
            )
            .expect("distributed run survives the crash");
        prop_assert_eq!(outcome.results.len(), windows as usize);

        // The crash surfaces as the victim group's first PingerUnhealthy
        // window (if the budget outlasted the run, there is none).
        let group = dist.groups().group(victim).to_vec();
        let crash_window = dist_sink.events().iter().find_map(|e| match e {
            RuntimeEvent::PingerUnhealthy { window, pinger } if group.contains(pinger) => {
                Some(*window)
            }
            _ => None,
        });
        let oracle = match crash_window {
            Some(w) => group
                .iter()
                .fold(Script::new(), |s, &srv| s.mark_unhealthy(w, srv)),
            None => Script::new(),
        };

        let seq_sink = CollectingSink::new();
        let mut seq = Detector::builder(ft.clone() as SharedTopology)
            .sink(Box::new(seq_sink.clone()))
            .build()
            .expect("boot oracle");
        let mut rng = SmallRng::seed_from_u64(seed);
        let seq_results = seq
            .run_scripted(&fabric, windows, &oracle, &mut rng)
            .expect("sequential oracle");
        prop_assert_eq!(&seq_results, &outcome.results);
        prop_assert_eq!(normalize(seq_sink.events()), normalize(dist_sink.events()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Incremental ≡ full across the control-plane expansion: a
    /// distributed fleet running `PllConfig::incremental` produces
    /// exactly the window results and event stream of the sequential
    /// *full-rescore* oracle, under loss × churn/agent-failure scripts ×
    /// cycle refreshes. Plan-epoch changes and refreshes land mid-run
    /// (cycle_s = 60 over 5 windows), exercising the fallback-to-rebuild
    /// paths; the quiet stretches exercise the patch path.
    #[test]
    fn incremental_distributed_equals_full_oracle(
        failures in proptest::collection::vec((0u16..64, 0u8..3, 0u8..8), 0..3),
        raw_script in proptest::collection::vec((0u8..6, 0u8..8, 0u16..64), 0..6),
        seed in 0u64..1_000,
        agents in 4usize..7,
    ) {
        let ft = Arc::new(Fattree::new(4).unwrap());
        let windows = 5u64;
        let mut fabric = Fabric::new(ft.as_ref(), seed ^ 0xFAB);
        for &(link, kind, level) in &failures {
            let (l, d) = decode_failure(&ft, link, kind, level);
            fabric.set_discipline_both(l, d);
        }
        let script = raw_script
            .iter()
            .fold(DistScript::new(), |s, &(window, kind, target)| {
                s.at(
                    u64::from(window) % windows,
                    decode_action(&ft, agents, kind, target),
                )
            });

        let dist_sink = CollectingSink::new();
        let mut dist =
            DistributedDetector::new(ft.clone() as SharedTopology, incremental_config(), agents)
                .expect("boot distributed");
        dist.add_sink(Box::new(dist_sink.clone()));
        let mut rng = SmallRng::seed_from_u64(seed);
        let outcome = dist
            .run_distributed(&fabric, windows, &script, &mut rng)
            .expect("incremental distributed run");

        let seq_sink = CollectingSink::new();
        let mut seq = Detector::builder(ft.clone() as SharedTopology)
            .config(config())
            .sink(Box::new(seq_sink.clone()))
            .build()
            .expect("boot oracle");
        let mut rng = SmallRng::seed_from_u64(seed);
        let oracle = script.oracle(dist.groups());
        let seq_results = seq
            .run_scripted(&fabric, windows, &oracle, &mut rng)
            .expect("sequential full-rescore oracle");

        prop_assert_eq!(
            seq_results,
            outcome.results,
            "incremental distributed diverges from the full-rescore oracle \
             (script {:?}, failures {:?})",
            raw_script,
            failures
        );
        prop_assert_eq!(
            normalize(seq_sink.events()),
            normalize(dist_sink.events()),
            "event streams diverge (script {:?}, failures {:?})",
            raw_script,
            failures
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Component-parallel ≡ sequential across the control-plane
    /// expansion: a distributed fleet running `parallel_components > 1`
    /// (per-component PLL fanned out on the controller tier's internal
    /// pool) produces exactly the window results and event stream of
    /// the single-threaded sequential oracle, under loss ×
    /// churn/agent-failure scripts × cycle refreshes.
    #[test]
    fn parallel_distributed_equals_sequential_oracle(
        failures in proptest::collection::vec((0u16..64, 0u8..3, 0u8..8), 0..4),
        raw_script in proptest::collection::vec((0u8..6, 0u8..8, 0u16..64), 0..6),
        seed in 0u64..1_000,
        workers in 2usize..5,
    ) {
        let ft = Arc::new(Fattree::new(4).unwrap());
        let windows = 5u64;
        let mut fabric = Fabric::new(ft.as_ref(), seed ^ 0xFAB);
        for &(link, kind, level) in &failures {
            let (l, d) = decode_failure(&ft, link, kind, level);
            fabric.set_discipline_both(l, d);
        }
        let agents = 4usize;
        let script = raw_script
            .iter()
            .fold(DistScript::new(), |s, &(window, kind, target)| {
                s.at(
                    u64::from(window) % windows,
                    decode_action(&ft, agents, kind, target),
                )
            });

        let dist_sink = CollectingSink::new();
        let mut dist = DistributedDetector::new(
            ft.clone() as SharedTopology,
            config().with_parallel_diagnosis(workers),
            agents,
        )
        .expect("boot distributed");
        dist.add_sink(Box::new(dist_sink.clone()));
        let mut rng = SmallRng::seed_from_u64(seed);
        let outcome = dist
            .run_distributed(&fabric, windows, &script, &mut rng)
            .expect("parallel distributed run");

        let seq_sink = CollectingSink::new();
        let mut seq = Detector::builder(ft.clone() as SharedTopology)
            .config(config())
            .sink(Box::new(seq_sink.clone()))
            .build()
            .expect("boot oracle");
        let mut rng = SmallRng::seed_from_u64(seed);
        let oracle = script.oracle(dist.groups());
        let seq_results = seq
            .run_scripted(&fabric, windows, &oracle, &mut rng)
            .expect("sequential oracle");

        prop_assert_eq!(
            seq_results,
            outcome.results,
            "parallel distributed diverges from the sequential oracle \
             (script {:?}, failures {:?}, workers {})",
            raw_script,
            failures,
            workers
        );
        prop_assert_eq!(
            normalize(seq_sink.events()),
            normalize(dist_sink.events()),
            "event streams diverge (script {:?}, failures {:?}, workers {})",
            raw_script,
            failures,
            workers
        );
    }
}

/// The distributed copy of the component merge/split regression: the
/// drain removes one island's bridge from the plan mid-epoch (2 → 1
/// components) and the undrain's LinkUps split it back (1 → 2), each on
/// a plan-epoch change that must rebuild the cached skeleton. The fleet
/// runs component-parallel and must match the single-threaded
/// sequential oracle event for event.
#[test]
fn component_merge_and_split_stays_equivalent_distributed() {
    let ft = Arc::new(Fattree::new(4).unwrap());
    let mut fabric = Fabric::new(ft.as_ref(), 0xFAB);
    for l in [ft.ea_link(0, 0, 0), ft.ea_link(0, 1, 1)] {
        fabric.set_discipline_both(l, LossDiscipline::Full);
    }
    let script = DistScript::new()
        .topology(
            1,
            TopologyEvent::SwitchDrain {
                switch: ft.agg(0, 0),
            },
        )
        .topology(
            3,
            TopologyEvent::SwitchUndrain {
                switch: ft.agg(0, 0),
            },
        );

    let dist_sink = CollectingSink::new();
    let mut dist = DistributedDetector::new(
        ft.clone() as SharedTopology,
        config().with_parallel_diagnosis(4),
        4,
    )
    .expect("boot distributed");
    dist.add_sink(Box::new(dist_sink.clone()));
    let mut rng = SmallRng::seed_from_u64(7);
    let outcome = dist
        .run_distributed(&fabric, 5, &script, &mut rng)
        .expect("parallel distributed run");

    let seq_sink = CollectingSink::new();
    let mut seq = Detector::builder(ft.clone() as SharedTopology)
        .config(config())
        .sink(Box::new(seq_sink.clone()))
        .build()
        .expect("boot oracle");
    let mut rng = SmallRng::seed_from_u64(7);
    let oracle = script.oracle(dist.groups());
    let seq_results = seq.run_scripted(&fabric, 5, &oracle, &mut rng).unwrap();

    assert_eq!(seq_results, outcome.results);
    assert_eq!(normalize(seq_sink.events()), normalize(dist_sink.events()));
    let components: Vec<u64> = dist_sink
        .events()
        .into_iter()
        .filter_map(|e| match e {
            RuntimeEvent::DiagStats { components, .. } => Some(components),
            _ => None,
        })
        .collect();
    assert_eq!(
        components,
        vec![2, 1, 1, 2, 2],
        "the drain/undrain must merge then split the lossy components"
    );
}

/// A deterministic mid-window crash regression pinning the forfeit
/// semantics: the victim dies after its hello, its window-0 heartbeat
/// ack and exactly one report — partial output must be discarded as a
/// unit, never half-ingested.
#[test]
fn a_mid_report_crash_forfeits_the_whole_window() {
    let ft = Arc::new(Fattree::new(4).unwrap());
    let fabric = Fabric::quiet(ft.as_ref());
    let mut dist =
        DistributedDetector::new(ft.clone() as SharedTopology, SystemConfig::default(), 4)
            .expect("boot");
    let sink = CollectingSink::new();
    dist.add_sink(Box::new(sink.clone()));
    let group = dist.groups().group(1).to_vec();
    let mut rng = SmallRng::seed_from_u64(42);
    let outcome = dist
        .run_distributed_with_faults(&fabric, 2, &DistScript::new(), &[(1, 3)], &mut rng)
        .expect("run survives");
    assert_eq!(outcome.results.len(), 2);
    for &s in &group {
        assert!(!dist.watchdog.is_healthy(s), "whole group degrades");
    }
    // No ReportIngested from the victim group in either window.
    for e in sink.events() {
        if let RuntimeEvent::ReportIngested { pinger, .. } = e {
            assert!(
                !group.contains(&pinger),
                "forfeited reports must not be ingested"
            );
        }
    }
}

/// Distributed mode at the paper's testbed scale and beyond: a
/// Fattree(32) fleet (8192 servers, 8 agents) runs three windows end to
/// end over loopback transports, with one scripted link failure whose
/// re-dispatch travels as per-entry diffs — bytes proportional to the
/// delta, not the fleet.
///
/// `#[ignore]`d like the other large-scale suites; the CI smoke job
/// runs it in release (`cargo test --release --test
/// distributed_equivalence -- --ignored`).
#[test]
#[ignore = "Fattree(32) scale; run with --ignored (CI distributed smoke job, release mode)"]
fn fattree32_end_to_end_with_delta_proportional_dispatch() {
    let ft = Arc::new(Fattree::new(32).unwrap());
    let fabric = Fabric::quiet(ft.as_ref());

    // The distributed tier runs the churn-minimizing controller: seeded
    // cell re-solves keep surviving paths at their ids, so only the
    // paths the delta actually broke travel.
    let mut cfg = config();
    cfg.pmc.stable_patch = true;

    let mut base = DistributedDetector::new(ft.clone() as SharedTopology, cfg.clone(), 8)
        .expect("boot baseline");
    let mut rng = SmallRng::seed_from_u64(7);
    let baseline = base
        .run_distributed(&fabric, 3, &DistScript::new(), &mut rng)
        .expect("baseline run");
    assert_eq!(baseline.results.len(), 3);
    assert!(baseline.results.iter().all(|r| r.probes_sent > 0));

    let mut churn =
        DistributedDetector::new(ft.clone() as SharedTopology, cfg, 8).expect("boot churn");
    let script = DistScript::new().topology(
        1,
        TopologyEvent::LinkDown {
            link: ft.ea_link(0, 0, 0),
        },
    );
    let mut rng = SmallRng::seed_from_u64(7);
    let churned = churn
        .run_distributed(&fabric, 3, &script, &mut rng)
        .expect("churn run");

    // The single-link delta must be a sliver of the initial full sync…
    let full_sync = baseline.dispatch_bytes;
    let delta = churned.dispatch_bytes - full_sync;
    assert!(delta > 0, "the re-plan must ship something");
    assert!(
        delta * 4 <= full_sync,
        "dispatch bytes must be proportional to the delta, not the fleet: \
         delta {delta}, full sync {full_sync}"
    );

    // …and ≥10× below what the pre-diff protocol would ship: the same
    // changed lists, redispatched whole.
    let (diff_bytes, whole_bytes) = single_link_diff_vs_whole(&ft, 32);
    assert!(
        diff_bytes * 10 <= whole_bytes,
        "per-entry diffs must be ≥10× below whole-list redispatch: \
         diff {diff_bytes}, whole {whole_bytes}"
    );
}

/// The dispatch cost model's view of one `ea_link(0,0,0)` failure:
/// wire bytes of the per-entry diff protocol vs redispatching every
/// changed list whole (the pre-diff protocol). This is the same
/// comparison the `dispatch_bytes` bench persists for Fattree(16).
fn single_link_diff_vs_whole(ft: &Arc<Fattree>, _k: u32) -> (u64, u64) {
    use detector_system::dispatch::{
        encoded_list_len, rebase_and_diff, rebase_pairs, ListUpdate, FRAME_OVERHEAD,
    };
    use detector_system::Controller;

    let mut cfg = config();
    cfg.pmc.stable_patch = true;
    let mut ctl = Controller::new(ft.clone() as SharedTopology, cfg);
    let healthy = std::collections::HashSet::new();
    let dep0 = ctl.build_deployment(&healthy).expect("initial deployment");
    let ranges_before = ctl.probe_plan().map(|p| p.cell_ranges());
    ctl.apply_event(&TopologyEvent::LinkDown {
        link: ft.ea_link(0, 0, 0),
    })
    .expect("re-plan");
    let mut dep1 = ctl.build_deployment(&healthy).expect("patched deployment");
    let ranges_after = ctl.probe_plan().map(|p| p.cell_ranges());
    let rebases = rebase_pairs(ranges_before.as_deref(), ranges_after.as_deref());
    let (diff, stats) = rebase_and_diff(&dep0, &mut dep1, &rebases);

    let whole: usize = diff
        .updates
        .iter()
        .map(|u| match u {
            ListUpdate::Remove(_) => FRAME_OVERHEAD + 4,
            ListUpdate::Replace(list) => encoded_list_len(list),
            ListUpdate::Diff { pinger, .. } => dep1
                .pinglists
                .iter()
                .find(|l| l.pinger == *pinger)
                .map(encoded_list_len)
                .expect("diffed list exists in the new deployment"),
        })
        .sum();
    (stats.bytes_dispatched, whole as u64)
}
