//! Property-based tests of the core invariants: what PMC certifies must
//! hold under independent verification, and β-identifiability must imply
//! exact recovery of ≤β full-loss failures by PLL in the noiseless case.

use detector::prelude::*;
use proptest::prelude::*;

/// Random small candidate sets: up to 24 links, up to 60 paths of 1..5
/// links each.
fn candidate_sets() -> impl Strategy<Value = (usize, Vec<Vec<u32>>)> {
    (4usize..24).prop_flat_map(|n| {
        let paths =
            proptest::collection::vec(proptest::collection::btree_set(0u32..n as u32, 1..5), 1..60)
                .prop_map(|ps| ps.into_iter().map(|s| s.into_iter().collect()).collect());
        (Just(n), paths)
    })
}

fn build(raw: &[Vec<u32>]) -> Vec<ProbePath> {
    raw.iter()
        .enumerate()
        .map(|(i, ls)| ProbePath::from_links(i as u32, ls.iter().map(|&l| LinkId(l)).collect()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever construction claims, the independent verifier agrees.
    #[test]
    fn construction_claims_are_verified((n, raw) in candidate_sets()) {
        for beta in 0..=2u32 {
            let cfg = PmcConfig::new(1, beta);
            let m = construct(n, build(&raw), &cfg).unwrap();
            if m.achieved.targets_met {
                prop_assert!(min_coverage(&m) >= 1);
                prop_assert!(
                    max_identifiability(&m, beta) >= beta,
                    "claimed beta={} not verified (got {})",
                    beta,
                    max_identifiability(&m, beta)
                );
            }
        }
    }

    /// The lazy greedy and the strawman agree on target attainability.
    #[test]
    fn lazy_and_strawman_agree((n, raw) in candidate_sets()) {
        let lazy = construct(n, build(&raw), &PmcConfig::identifiable(1)).unwrap();
        let straw = construct(n, build(&raw), &PmcConfig::identifiable(1).strawman()).unwrap();
        prop_assert_eq!(lazy.achieved.targets_met, straw.achieved.targets_met);
    }

    /// On a verified 1-identifiable matrix, a single full-loss failure is
    /// recovered *exactly* from noiseless observations: the bad link's
    /// paths are the whole lossy set, so its explanation score strictly
    /// dominates every competitor (whose path sets are strict subsets, by
    /// identifiability).
    #[test]
    fn single_failure_is_exactly_recovered((n, raw) in candidate_sets(), pick in 0usize..1000) {
        let m = construct(n, build(&raw), &PmcConfig::identifiable(1)).unwrap();
        prop_assume!(m.achieved.targets_met);
        let bad = LinkId((pick % n) as u32);

        let observations: Vec<PathObservation> = m
            .paths
            .iter()
            .map(|p| {
                PathObservation::new(p.id, 100, if p.covers(bad) { 100 } else { 0 })
            })
            .collect();
        let d = localize(&m, &observations, &PllConfig::default());
        prop_assert_eq!(d.suspect_links(), vec![bad]);
    }

    /// For ≤β simultaneous full-loss failures on a β-identifiable matrix,
    /// the greedy explains *every* loss and blames only links that meet
    /// the hit-ratio threshold. It may blame wrong links — the greedy is a
    /// minimum-hitting-set heuristic that ranks by explained losses with
    /// hit ratio only as a filter, which is where the paper's residual
    /// false positives come from (§5.3) — so exact recovery is only
    /// guaranteed in one sharp case: when every suspect is fully
    /// consistent (hit ratio 1) and there are at most β of them,
    /// β-identifiability forces the suspect set to equal the true failure
    /// set (both are ≤β failure hypotheses producing the same lossy set).
    #[test]
    fn pair_failures_are_consistently_explained(
        (n, raw) in candidate_sets(),
        p1 in 0usize..1000,
        p2 in 0usize..1000,
    ) {
        let m = construct(n, build(&raw), &PmcConfig::identifiable(2)).unwrap();
        prop_assume!(m.achieved.targets_met);
        let mut bad = vec![LinkId((p1 % n) as u32), LinkId((p2 % n) as u32)];
        bad.sort_unstable();
        bad.dedup();

        let observations: Vec<PathObservation> = m
            .paths
            .iter()
            .map(|p| {
                let lossy = bad.iter().any(|b| p.covers(*b));
                PathObservation::new(p.id, 100, if lossy { 100 } else { 0 })
            })
            .collect();
        let cfg = PllConfig::default();
        let d = localize(&m, &observations, &cfg);
        // The true links have hit ratio 1 and cover every lossy path, so
        // the greedy can always make progress: nothing stays unexplained.
        prop_assert!(d.unexplained_paths.is_empty(), "losses left unexplained");
        prop_assert!(!d.suspects.is_empty());
        // Every suspect passed the hit-ratio filter and explained
        // something.
        for s in &d.suspects {
            prop_assert!(
                s.hit_ratio >= cfg.hit_ratio_threshold,
                "suspect {} below threshold ({})",
                s.link,
                s.hit_ratio
            );
            prop_assert!(s.explained_paths > 0);
        }
        // The sharp identifiability consequence.
        let fully_consistent = d
            .suspects
            .iter()
            .all(|s| (s.hit_ratio - 1.0).abs() < 1e-12);
        if fully_consistent && d.suspects.len() <= 2 {
            prop_assert_eq!(
                d.suspect_links(),
                bad.clone(),
                "≤2 fully-consistent suspects must be exactly the failed links"
            );
        }
    }

    /// Structural sanity of constructed matrices: selection never keeps a
    /// path covering zero links (an empty routing-matrix row can neither
    /// cover nor identify anything and would only inflate probe cost),
    /// and row ids come out densely renumbered so observations index
    /// correctly.
    #[test]
    fn constructed_matrices_have_no_empty_paths(
        (n, raw) in candidate_sets(),
        empties in 0usize..4,
        alpha in 1u32..3,
        beta in 0u32..3,
    ) {
        // Splice some explicitly empty candidate paths in as well — the
        // generator above never produces them, but callers might.
        let mut candidates = build(&raw);
        for e in 0..empties {
            candidates.push(ProbePath::from_links((raw.len() + e) as u32, vec![]));
        }
        let m = construct(n, candidates, &PmcConfig::new(alpha, beta)).unwrap();
        for (i, p) in m.paths.iter().enumerate() {
            prop_assert!(!p.is_empty(), "selected path {} covers no links", i);
            prop_assert_eq!(p.id, PathId(i as u32), "path ids must be dense");
        }
    }

    /// `PathObservation::new` upholds `lost <= sent` for arbitrary counter
    /// values (pinger counters can disagree transiently — e.g. a reply
    /// arriving after its window closed — and the diagnoser's loss ratios
    /// must still land in [0, 1]).
    #[test]
    fn observation_lost_never_exceeds_sent(sent in 0u64..2_000_000, lost in 0u64..4_000_000) {
        let o = PathObservation::new(PathId(0), sent, lost);
        prop_assert!(o.lost <= o.sent, "lost {} > sent {}", o.lost, o.sent);
        let r = o.loss_ratio();
        prop_assert!((0.0..=1.0).contains(&r), "loss ratio {} out of [0,1]", r);
    }

    /// PLL never blames a link all of whose paths are clean.
    #[test]
    fn pll_never_blames_exonerated_links((n, raw) in candidate_sets(), bad in 0u32..24) {
        let m = construct(n, build(&raw), &PmcConfig::coverage(1)).unwrap();
        let bad = LinkId(bad % n as u32);
        let observations: Vec<PathObservation> = m
            .paths
            .iter()
            .map(|p| {
                let lossy = p.covers(bad);
                PathObservation::new(p.id, 100, if lossy { 60 } else { 0 })
            })
            .collect();
        let d = localize(&m, &observations, &PllConfig::default());
        for s in &d.suspects {
            let clean = m
                .paths_through(s.link)
                .all(|p| !observations[p.id.index()].is_lossy());
            prop_assert!(!clean, "blamed fully-clean link {}", s.link);
        }
    }
}
