//! Integration comparisons between deTector and the baseline monitoring
//! systems on identical failure scenarios (the §2 motivation, end to end).

use detector::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn detector_localizes_with_fewer_probes_than_pingmesh() {
    let ft = Fattree::new(4).unwrap();
    let bad = ft.ac_link(1, 0, 0);
    let mut fabric = Fabric::quiet(&ft);
    fabric.set_discipline_both(bad, LossDiscipline::Full);
    let mut rng = SmallRng::seed_from_u64(1);

    // deTector: one window localizes, counting every probe sent.
    let mut run = MonitorRun::new(&ft, SystemConfig::default().with_rate(2.0)).unwrap();
    let w = run.run_window(&fabric, &mut rng);
    assert!(w.diagnosis.suspect_links().contains(&bad));
    let detector_probes = w.probes_sent * 2; // Ping + reply.

    // Pingmesh: needs a detection round at comparable budget *plus* a
    // Netbouncer sweep to name the link.
    let bcfg = BaselineConfig::default();
    let pm = BaselineSystem::pingmesh(&ft, bcfg);
    let det = pm.detect_window(&fabric, detector_probes, &mut rng);
    assert!(!det.suspects.is_empty());
    let loc = netbouncer_localize(&ft, &fabric, &det.suspects, &bcfg, u64::MAX, &mut rng);
    assert!(loc.links.contains(&bad));
    let pingmesh_probes = det.probes_used + loc.probes_used;

    // Flakiness audit: with the pinned seed above this test is fully
    // deterministic, and a sweep over seeds 0..32 shows the ratio never
    // drops below 2.8x (detection at matched budget plus the Netbouncer
    // sweep needed to name the link). Table 2 of the paper tells the same
    // story structurally: deTector probes ~1% of the original ECMP paths,
    // while an all-pairs mesh scales with the square of the server count.
    // Assert a 2x margin so the comparison stays meaningful rather than
    // hinging on a one-probe difference.
    assert!(
        pingmesh_probes > 2 * detector_probes,
        "pingmesh {pingmesh_probes} vs deTector {detector_probes}: \
         expected >2x margin (Table 2)"
    );
}

#[test]
fn ecmp_dilution_hides_low_rate_loss_from_pair_probing() {
    // §2: with ECMP, a low-rate loss on one of many parallel paths barely
    // moves pair-level loss ratios; deTector's pinned paths accumulate
    // evidence on the failing link itself.
    let ft = Fattree::new(4).unwrap();
    let bad = ft.ac_link(0, 0, 0);
    let mut fabric = Fabric::quiet(&ft);
    fabric.set_discipline_both(bad, LossDiscipline::RandomPartial { rate: 0.08 });
    let mut rng = SmallRng::seed_from_u64(2);

    // Pingmesh at a modest budget: few probes per pair, spread across 4
    // parallel paths each — the suspect set is unreliable/noisy-empty.
    let pm = BaselineSystem::pingmesh(&ft, BaselineConfig::default());
    let det = pm.detect_window(&fabric, 1000, &mut rng);
    let hit_pairs = det.pairs.iter().filter(|p| p.lost > 0).count();
    // Most pairs see nothing at all.
    assert!(
        hit_pairs * 5 < det.pairs.len(),
        "{} of {} pairs saw loss",
        hit_pairs,
        det.pairs.len()
    );

    // deTector with (3,1) pinned paths: several probes repeatedly cross
    // the failing link every window; a couple of windows suffice.
    let mut run = MonitorRun::new(&ft, SystemConfig::default()).unwrap();
    let mut found = false;
    for _ in 0..4 {
        let w = run.run_window(&fabric, &mut rng);
        if w.diagnosis.suspect_links().contains(&bad) {
            found = true;
            break;
        }
    }
    assert!(found, "deTector must localize the low-rate loss");
}

#[test]
fn fbtracert_needs_an_extra_round_that_transients_escape() {
    let ft = Fattree::new(4).unwrap();
    let bad = ft.ea_link(2, 1, 0);
    let mut fabric = Fabric::quiet(&ft);
    fabric.set_discipline_both(bad, LossDiscipline::Full);
    let mut rng = SmallRng::seed_from_u64(3);

    let bcfg = BaselineConfig::default();
    let nn = BaselineSystem::netnorad(&ft, bcfg, 4);
    let det = nn.detect_window(&fabric, 8000, &mut rng);
    assert!(
        !det.suspects.is_empty(),
        "NetNORAD detects the pair-level loss"
    );

    // Persistent failure: fbtracert localizes on the second round.
    let loc = fbtracert_localize(&ft, &fabric, &det.suspects, &bcfg, u64::MAX, &mut rng);
    assert!(loc.links.contains(&bad));

    // Transient failure: gone before the second round.
    fabric.clear_failures();
    let loc = fbtracert_localize(&ft, &fabric, &det.suspects, &bcfg, u64::MAX, &mut rng);
    assert!(loc.links.is_empty());
}
