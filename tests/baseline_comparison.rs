//! Integration comparisons between deTector and the baseline monitoring
//! systems on identical failure scenarios (the §2 motivation, end to end).
//!
//! Every system is driven through the same polymorphic [`Localizer`]
//! interface: deTector's runtime uses PLL internally, and the baselines'
//! sweep stages hand their (matrix, observations) to trait objects.

use std::sync::Arc;

use detector::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn detector_localizes_with_fewer_probes_than_pingmesh() {
    let ft = Fattree::new(4).unwrap();
    let bad = ft.ac_link(1, 0, 0);
    let mut fabric = Fabric::quiet(&ft);
    fabric.set_discipline_both(bad, LossDiscipline::Full);
    let mut rng = SmallRng::seed_from_u64(1);

    // deTector: one window localizes, counting every probe sent.
    let mut run =
        Detector::new(Arc::new(ft.clone()), SystemConfig::default().with_rate(2.0)).unwrap();
    let w = run.step(&fabric, &mut rng);
    assert!(w.diagnosis.suspect_links().contains(&bad));
    let detector_probes = w.probes_sent * 2; // Ping + reply.

    // Pingmesh: needs a detection round at comparable budget *plus* a
    // Netbouncer sweep to name the link — sweep and inference run through
    // the unified Localizer interface.
    let bcfg = BaselineConfig::default();
    let pm = BaselineSystem::pingmesh(&ft, bcfg);
    let det = pm.detect_window(&fabric, detector_probes, &mut rng);
    assert!(!det.suspects.is_empty());
    let sweep = netbouncer_sweep(&ft, &fabric, &det.suspects, &bcfg, u64::MAX, &mut rng);
    let netbouncer: Box<dyn Localizer> = Box::new(NetbouncerLocalizer::default());
    let loc = netbouncer.localize(&sweep.matrix, &sweep.observations);
    assert!(loc.suspect_links().contains(&bad));
    let pingmesh_probes = det.probes_used + sweep.probes_used;

    // Flakiness audit: with the pinned seed above this test is fully
    // deterministic, and a sweep over seeds 0..32 shows the ratio never
    // drops below 2.8x (detection at matched budget plus the Netbouncer
    // sweep needed to name the link). Table 2 of the paper tells the same
    // story structurally: deTector probes ~1% of the original ECMP paths,
    // while an all-pairs mesh scales with the square of the server count.
    // Assert a 2x margin so the comparison stays meaningful rather than
    // hinging on a one-probe difference.
    assert!(
        pingmesh_probes > 2 * detector_probes,
        "pingmesh {pingmesh_probes} vs deTector {detector_probes}: \
         expected >2x margin (Table 2)"
    );
}

#[test]
fn ecmp_dilution_hides_low_rate_loss_from_pair_probing() {
    // §2: with ECMP, a low-rate loss on one of many parallel paths barely
    // moves pair-level loss ratios; deTector's pinned paths accumulate
    // evidence on the failing link itself.
    let ft = Fattree::new(4).unwrap();
    let bad = ft.ac_link(0, 0, 0);
    let mut fabric = Fabric::quiet(&ft);
    fabric.set_discipline_both(bad, LossDiscipline::RandomPartial { rate: 0.08 });
    let mut rng = SmallRng::seed_from_u64(2);

    // Pingmesh at a modest budget: few probes per pair, spread across 4
    // parallel paths each — the suspect set is unreliable/noisy-empty.
    let pm = BaselineSystem::pingmesh(&ft, BaselineConfig::default());
    let det = pm.detect_window(&fabric, 1000, &mut rng);
    let hit_pairs = det.pairs.iter().filter(|p| p.lost > 0).count();
    // Most pairs see nothing at all.
    assert!(
        hit_pairs * 5 < det.pairs.len(),
        "{} of {} pairs saw loss",
        hit_pairs,
        det.pairs.len()
    );

    // deTector with (3,1) pinned paths: several probes repeatedly cross
    // the failing link every window; a couple of windows suffice.
    let mut run = Detector::new(Arc::new(ft.clone()), SystemConfig::default()).unwrap();
    let mut found = false;
    for _ in 0..4 {
        let w = run.step(&fabric, &mut rng);
        if w.diagnosis.suspect_links().contains(&bad) {
            found = true;
            break;
        }
    }
    assert!(found, "deTector must localize the low-rate loss");
}

#[test]
fn fbtracert_needs_an_extra_round_that_transients_escape() {
    let ft = Fattree::new(4).unwrap();
    let bad = ft.ea_link(2, 1, 0);
    let mut fabric = Fabric::quiet(&ft);
    fabric.set_discipline_both(bad, LossDiscipline::Full);
    let mut rng = SmallRng::seed_from_u64(3);

    let bcfg = BaselineConfig::default();
    let nn = BaselineSystem::netnorad(&ft, bcfg, 4);
    let det = nn.detect_window(&fabric, 8000, &mut rng);
    assert!(
        !det.suspects.is_empty(),
        "NetNORAD detects the pair-level loss"
    );

    // Persistent failure: fbtracert localizes on the second round, via
    // the trait-object inference over its recorded prefix chains.
    let fbtracert: Box<dyn Localizer> = Box::new(FbtracertLocalizer::for_topology(&ft, bcfg));
    let sweep = fbtracert_sweep(&ft, &fabric, &det.suspects, &bcfg, u64::MAX, &mut rng);
    let loc = fbtracert.localize(&sweep.matrix, &sweep.observations);
    assert!(loc.suspect_links().contains(&bad));

    // Transient failure: gone before the second round.
    fabric.clear_failures();
    let sweep = fbtracert_sweep(&ft, &fabric, &det.suspects, &bcfg, u64::MAX, &mut rng);
    let loc = fbtracert.localize(&sweep.matrix, &sweep.observations);
    assert!(loc.suspect_links().is_empty());
}

#[test]
fn all_six_localizers_name_a_full_loss_from_detector_observations() {
    // The acceptance shape of the unified API: PLL, Tomo, SCORE, OMP,
    // Netbouncer and fbtracert all run behind `dyn Localizer`. The four
    // matrix-driven algorithms share deTector's own probe matrix and
    // window observations; the two baseline inferences run over their
    // systems' sweep data for the same failure.
    let ft = Fattree::new(4).unwrap();
    let bad = ft.ac_link(1, 0, 0);
    let mut fabric = Fabric::quiet(&ft);
    fabric.set_discipline_both(bad, LossDiscipline::Full);
    let mut rng = SmallRng::seed_from_u64(4);

    // One deTector window, observed through a collecting sink.
    let collector = CollectingSink::new();
    let mut run = Detector::builder(Arc::new(ft.clone()))
        .sink(Box::new(collector.clone()))
        .build()
        .unwrap();
    let matrix = run.matrix().clone();
    let w = run.step(&fabric, &mut rng);
    assert!(w.diagnosis.suspect_links().contains(&bad));

    // Rebuild per-path observations from the matrix-level probing the
    // runtime performed (the diagnoser aggregates them identically).
    let mut rng2 = SmallRng::seed_from_u64(5);
    let mut observations = Vec::new();
    for path in &matrix.paths {
        let route = ft.graph().route_from_nodes(path.nodes().to_vec()).unwrap();
        let (mut sent, mut lost) = (0u64, 0u64);
        for i in 0..20u16 {
            let flow = FlowKey::udp(
                route.nodes[0].0,
                route.nodes.last().unwrap().0,
                33_000 + i,
                53_533,
            );
            sent += 1;
            if !fabric.round_trip(&route, flow, &mut rng2).success {
                lost += 1;
            }
        }
        observations.push(PathObservation::new(path.id, sent, lost));
    }

    let matrix_driven: Vec<Box<dyn Localizer>> = vec![
        Box::new(PllLocalizer::default()),
        Box::new(TomoLocalizer::default()),
        Box::new(ScoreLocalizer::default()),
        Box::new(OmpLocalizer::default()),
    ];
    for l in &matrix_driven {
        let d = l.localize(&matrix, &observations);
        assert!(
            d.suspect_links().contains(&bad),
            "{} must localize the full loss, got {:?}",
            l.name(),
            d.suspect_links()
        );
    }

    // Baseline inferences over their own sweeps.
    let bcfg = BaselineConfig::default();
    let suspects = vec![(ft.server(1, 0, 0), ft.server(2, 0, 0))];
    let nb_sweep = netbouncer_sweep(&ft, &fabric, &suspects, &bcfg, u64::MAX, &mut rng);
    let fb_sweep = fbtracert_sweep(&ft, &fabric, &suspects, &bcfg, u64::MAX, &mut rng);
    let baseline_driven: Vec<(Box<dyn Localizer>, &SweepResult)> = vec![
        (Box::new(NetbouncerLocalizer::default()), &nb_sweep),
        (
            Box::new(FbtracertLocalizer::for_topology(&ft, bcfg)),
            &fb_sweep,
        ),
    ];
    for (l, sweep) in &baseline_driven {
        let d = l.localize(&sweep.matrix, &sweep.observations);
        assert!(
            d.suspect_links().contains(&bad),
            "{} must localize the full loss, got {:?}",
            l.name(),
            d.suspect_links()
        );
    }

    // The event stream recorded the deTector window end to end.
    let events = collector.events();
    assert!(matches!(
        events.first(),
        Some(RuntimeEvent::WindowStarted { window: 0, .. })
    ));
    assert!(matches!(
        events.last(),
        Some(RuntimeEvent::DiagnosisReady(_))
    ));
}
