//! Integration tests for the event-driven runtime API: event-ordering
//! invariants, cycle-boundary semantics, the JSON-lines sink, builder
//! validation, and a [`DataPlane`] mock driving the runtime without the
//! simulated fabric.

use std::collections::HashSet;
use std::io::Write;
use std::sync::{Arc, Mutex};

use detector::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn fattree() -> Arc<Fattree> {
    Arc::new(Fattree::new(4).unwrap())
}

/// Positions of each event kind within one window's slice of the stream.
fn kind(e: &RuntimeEvent) -> &'static str {
    match e {
        RuntimeEvent::WindowStarted { .. } => "started",
        RuntimeEvent::CycleRefreshed { .. } => "cycle",
        RuntimeEvent::PingerUnhealthy { .. } => "unhealthy",
        RuntimeEvent::ReportIngested { .. } => "report",
        RuntimeEvent::IngestStats { .. } => "ingest",
        RuntimeEvent::DiagStats { .. } => "diag",
        RuntimeEvent::DiagnosisReady(_) => "ready",
        RuntimeEvent::PlanUpdated { .. } => "plan",
    }
}

fn window_of(e: &RuntimeEvent) -> u64 {
    match e {
        RuntimeEvent::WindowStarted { window, .. }
        | RuntimeEvent::CycleRefreshed { window, .. }
        | RuntimeEvent::PingerUnhealthy { window, .. }
        | RuntimeEvent::ReportIngested { window, .. }
        | RuntimeEvent::IngestStats { window, .. }
        | RuntimeEvent::DiagStats { window, .. } => *window,
        RuntimeEvent::DiagnosisReady(w) => w.window,
        // Plan updates happen between windows, never inside a step().
        RuntimeEvent::PlanUpdated { .. } => u64::MAX,
    }
}

#[test]
fn every_window_is_bracketed_by_started_and_ready() {
    let ft = fattree();
    let collector = CollectingSink::new();
    let mut run = Detector::builder(ft.clone())
        .sink(Box::new(collector.clone()))
        .build()
        .unwrap();
    let fabric = Fabric::quiet(ft.as_ref());
    let mut rng = SmallRng::seed_from_u64(1);
    let windows = 4u64;
    for _ in 0..windows {
        run.step(&fabric, &mut rng);
    }

    let events = collector.events();
    for w in 0..windows {
        let of_window: Vec<&RuntimeEvent> = events.iter().filter(|e| window_of(e) == w).collect();
        assert_eq!(kind(of_window[0]), "started", "window {w} must open first");
        assert_eq!(
            kind(of_window[of_window.len() - 1]),
            "ready",
            "window {w} must close with DiagnosisReady"
        );
        assert_eq!(
            of_window.iter().filter(|e| kind(e) == "started").count(),
            1,
            "window {w}: exactly one WindowStarted"
        );
        assert_eq!(
            of_window.iter().filter(|e| kind(e) == "ready").count(),
            1,
            "window {w}: exactly one DiagnosisReady"
        );
        // Reports land strictly between the brackets.
        let reports = of_window.iter().filter(|e| kind(e) == "report").count();
        assert!(reports > 0, "window {w}: healthy pingers must report");
    }
    // Windows appear in order.
    let order: Vec<u64> = events.iter().map(window_of).collect();
    let mut sorted = order.clone();
    sorted.sort_unstable();
    assert_eq!(order, sorted, "windows must not interleave");
}

#[test]
fn cycle_refreshed_fires_exactly_on_cycle_boundaries() {
    let ft = fattree();
    let collector = CollectingSink::new();
    // window 30 s, cycle 60 s: refreshes exactly at windows 2, 4, 6, ...
    let cfg = SystemConfig {
        cycle_s: 60,
        ..SystemConfig::default()
    };
    let mut run = Detector::builder(ft.clone())
        .config(cfg)
        .sink(Box::new(collector.clone()))
        .build()
        .unwrap();
    let fabric = Fabric::quiet(ft.as_ref());
    let mut rng = SmallRng::seed_from_u64(2);
    for _ in 0..7 {
        run.step(&fabric, &mut rng);
    }

    let refreshed: Vec<u64> = collector
        .events()
        .iter()
        .filter(|e| matches!(e, RuntimeEvent::CycleRefreshed { .. }))
        .map(window_of)
        .collect();
    assert_eq!(
        refreshed,
        vec![2, 4, 6],
        "refresh exactly on 60 s boundaries"
    );

    // Versions advance monotonically with each refresh.
    let versions: Vec<u64> = collector
        .events()
        .iter()
        .filter_map(|e| match e {
            RuntimeEvent::CycleRefreshed { version, .. } => Some(*version),
            _ => None,
        })
        .collect();
    assert_eq!(versions, vec![2, 3, 4], "builder made v1; refreshes follow");
}

#[test]
fn unhealthy_pingers_surface_as_events_not_reports() {
    let ft = fattree();
    let collector = CollectingSink::new();
    let mut run = Detector::builder(ft.clone())
        .sink(Box::new(collector.clone()))
        .build()
        .unwrap();
    let sick = ft.server(0, 0, 0);
    run.watchdog.mark_unhealthy(sick);
    let fabric = Fabric::quiet(ft.as_ref());
    let mut rng = SmallRng::seed_from_u64(3);
    run.step(&fabric, &mut rng);

    let events = collector.events();
    let unhealthy: Vec<NodeId> = events
        .iter()
        .filter_map(|e| match e {
            RuntimeEvent::PingerUnhealthy { pinger, .. } => Some(*pinger),
            _ => None,
        })
        .collect();
    assert_eq!(unhealthy, vec![sick]);
    // The sick pinger never reports.
    assert!(events.iter().all(|e| !matches!(
        e,
        RuntimeEvent::ReportIngested { pinger, .. } if *pinger == sick
    )));
}

/// A `Write` implementor sharing its buffer, so the test can read what
/// the detector-owned sink wrote.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn json_lines_sink_emits_one_valid_record_per_window() {
    let ft = fattree();
    let buf = SharedBuf::default();
    let mut run = Detector::builder(ft.clone())
        .sink(Box::new(JsonLinesSink::new(buf.clone())))
        .build()
        .unwrap();
    let mut fabric = Fabric::quiet(ft.as_ref());
    let bad = ft.ac_link(2, 1, 0);
    fabric.set_discipline_both(bad, LossDiscipline::Full);
    let mut rng = SmallRng::seed_from_u64(4);
    let windows = 3u64;
    let mut results = Vec::new();
    for _ in 0..windows {
        results.push(run.step(&fabric, &mut rng));
    }

    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), windows as usize, "one record per window");

    for (i, line) in lines.iter().enumerate() {
        let v = Json::parse(line).unwrap_or_else(|e| panic!("line {i} invalid: {e}"));
        assert_eq!(
            v.get("event").and_then(Json::as_str),
            Some("diagnosis_ready")
        );
        assert_eq!(v.get("window").and_then(Json::as_u64), Some(i as u64));
        // The record round-trips into the exact WindowResult step()
        // returned (serde shim satellite: Serialize derives compile, the
        // JSON path carries the data).
        let parsed = WindowResult::from_json(&v).expect("record must decode");
        assert_eq!(parsed, results[i]);
        assert!(parsed.diagnosis.suspect_links().contains(&bad));
    }
}

/// A data plane with no simulator behind it: drops every flow whose
/// route crosses a configured link, delivers everything else at a fixed
/// RTT.
struct MockPlane {
    bad_links: HashSet<LinkId>,
    windows_seen: Mutex<Vec<u64>>,
}

impl MockPlane {
    fn failing(links: impl IntoIterator<Item = LinkId>) -> Self {
        Self {
            bad_links: links.into_iter().collect(),
            windows_seen: Mutex::new(Vec::new()),
        }
    }
}

impl DataPlane for MockPlane {
    fn probe(&self, route: &Route, _flow: FlowKey, _rng: &mut SmallRng) -> ProbeOutcome {
        let hit = route.links.iter().any(|l| self.bad_links.contains(l));
        ProbeOutcome {
            delivered: !hit,
            rtt_us: if hit { 0.0 } else { 120.0 },
        }
    }

    fn window_started(&self, window: u64, _start_s: u64) {
        self.windows_seen.lock().unwrap().push(window);
    }
}

#[test]
fn mock_dataplane_drives_the_runtime_without_a_fabric() {
    let ft = fattree();
    let bad = ft.ea_link(1, 1, 0);
    let plane = MockPlane::failing([bad]);
    let mut run = Detector::new(ft.clone(), SystemConfig::default()).unwrap();
    let mut rng = SmallRng::seed_from_u64(5);

    let w = run.step(&plane, &mut rng);
    assert!(
        w.diagnosis.suspect_links().contains(&bad),
        "suspects: {:?}",
        w.diagnosis.suspect_links()
    );
    assert!(w.probes_sent > 0);
    // The window-boundary hook reached the mock.
    assert_eq!(*plane.windows_seen.lock().unwrap(), vec![0]);
}

#[test]
fn builder_surfaces_config_errors_with_typed_variants() {
    let ft = fattree();
    let err = Detector::new(
        ft.clone(),
        SystemConfig {
            cycle_s: 0,
            ..SystemConfig::default()
        },
    )
    .err()
    .expect("zero cycle must be rejected");
    assert!(matches!(err, BuildError::Config(ConfigError::ZeroCycle)));
    // The error is displayable for operators.
    assert!(err.to_string().contains("cycle_s"));

    // And validate() is callable standalone, before any topology work.
    assert_eq!(
        SystemConfig {
            window_s: 0,
            ..SystemConfig::default()
        }
        .validate(),
        Err(ConfigError::ZeroWindow)
    );
    assert!(SystemConfig::default().validate().is_ok());
}

#[test]
fn diagnosis_and_metrics_round_trip_through_json() {
    // Satellite: Serialize derives exist (the serde shim accepts the
    // types) and the JSON shim round-trips the values exactly.
    fn assert_serializable<T: detector::core::json::ToJson + serde::Serialize>(_: &T) {}

    let ft = fattree();
    let mut fabric = Fabric::quiet(ft.as_ref());
    let bad = ft.ac_link(0, 1, 1);
    fabric.set_discipline_both(bad, LossDiscipline::Full);
    let mut run = Detector::new(ft.clone(), SystemConfig::default()).unwrap();
    let mut rng = SmallRng::seed_from_u64(6);
    let w = run.step(&fabric, &mut rng);
    assert!(!w.diagnosis.suspects.is_empty());

    assert_serializable(&w);
    assert_serializable(&w.diagnosis);

    let d2 = Diagnosis::from_json(&Json::parse(&w.diagnosis.to_json().to_string()).unwrap());
    assert_eq!(d2.as_ref(), Some(&w.diagnosis));

    let m = evaluate_diagnosis(&w.diagnosis.suspect_links(), &[bad]);
    assert_serializable(&m);
    let m2 = LocalizationMetrics::from_json(&Json::parse(&m.to_json().to_string()).unwrap());
    assert_eq!(m2, Some(m));
}
