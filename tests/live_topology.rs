//! Integration tests for the live-topology API: epoch-by-epoch
//! equivalence of incremental and from-scratch planning under arbitrary
//! event sequences, pinger re-binding sanity (`lost <= sent`), the
//! `Detector::apply` end-to-end path, and `PlanUpdated` JSON round-trips.

use std::collections::HashSet;
use std::sync::Arc;

use detector::prelude::*;
use detector::simnet::ChurnSchedule;
use detector::system::{Controller, Pinger, TopologyEvent};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn assert_matrices_equal(a: &ProbeMatrix, b: &ProbeMatrix, ctx: &str) {
    assert_eq!(a.num_links, b.num_links, "{ctx}: universe size");
    assert_eq!(a.achieved, b.achieved, "{ctx}: achieved targets");
    assert_eq!(a.uncoverable, b.uncoverable, "{ctx}: uncoverable links");
    assert_eq!(a.paths.len(), b.paths.len(), "{ctx}: path count");
    for (i, (pa, pb)) in a.paths.iter().zip(&b.paths).enumerate() {
        assert_eq!(pa.links(), pb.links(), "{ctx}: path {i} links");
        assert_eq!(pa.nodes(), pb.nodes(), "{ctx}: path {i} nodes");
    }
}

/// Decodes a raw `(kind, target)` pair into an event against `ft`.
/// Small target ranges make up/down collisions (and thus restores) likely.
fn decode_event(ft: &Fattree, kind: u8, target: u16) -> TopologyEvent {
    let probe_links = ft.probe_links() as u32;
    let switches = ft.graph().num_switches() as u32;
    let pods = ft.k();
    match kind % 6 {
        0 => TopologyEvent::LinkDown {
            link: LinkId(target as u32 % probe_links),
        },
        1 => TopologyEvent::LinkUp {
            link: LinkId(target as u32 % probe_links),
        },
        2 => TopologyEvent::SwitchDrain {
            switch: NodeId(target as u32 % switches),
        },
        3 => TopologyEvent::SwitchUndrain {
            switch: NodeId(target as u32 % switches),
        },
        4 => TopologyEvent::PodDrained {
            pod: target as u32 % pods,
        },
        _ => TopologyEvent::PodAdded {
            pod: target as u32 % pods,
        },
    }
}

/// Localizes a synthetic noiseless window over `matrix`: every path
/// crossing a link of `bad` loses everything, every other path is
/// clean. Run against the incremental and the from-scratch matrix, the
/// suspect sets must agree — ids differ between the two, so this drives
/// the id-index layer end to end.
fn synthetic_suspects(matrix: &ProbeMatrix, bad: &[LinkId]) -> Vec<LinkId> {
    let obs: Vec<PathObservation> = matrix
        .paths
        .iter()
        .map(|p| {
            let lossy = bad.iter().any(|&l| p.covers(l));
            PathObservation::new(p.id, 100, if lossy { 100 } else { 0 })
        })
        .collect();
    localize(matrix, &obs, &PllConfig::default()).suspect_links()
}

/// Applies `raw` events one by one, asserting after every epoch that the
/// incrementally patched matrix equals a from-scratch recompute on the
/// mutated topology — same paths row for row, and the same diagnosis
/// over a synthetic failure episode (incremental == from-scratch
/// *diagnosis*, even though the two matrices' segmented ids differ).
fn check_equivalence(ft: Arc<Fattree>, raw: &[(u8, u16)], exhaustive_limit: u128) {
    let mut ctl = Controller::new(ft.clone() as SharedTopology, SystemConfig::default())
        .with_exhaustive_limit(exhaustive_limit);
    ctl.build_deployment(&HashSet::new()).unwrap();
    for (i, &(kind, target)) in raw.iter().enumerate() {
        let ev = decode_event(&ft, kind, target);
        let update = ctl.apply_event(&ev).unwrap();
        assert_eq!(update.epoch, (i + 1) as u64, "epoch must track events");
        let patched = ctl.compute_matrix().unwrap();
        let scratch = ctl.compute_matrix_from_scratch().unwrap();
        assert_matrices_equal(
            &patched,
            &scratch,
            &format!("epoch {} ({ev:?})", update.epoch),
        );
        // Offline links must never be probed.
        for l in ctl.view().offline_links() {
            assert!(
                !patched.paths.iter().any(|p| p.covers(*l)),
                "offline link {l} still probed at epoch {}",
                update.epoch
            );
        }
        // Epoch-by-epoch diagnosis equivalence: fail the two smallest
        // still-online links and diagnose both matrices.
        let bad: Vec<LinkId> = (0..ft.probe_links() as u32)
            .map(LinkId)
            .filter(|l| !ctl.view().offline_links().contains(l))
            .take(2)
            .collect();
        assert_eq!(
            synthetic_suspects(&patched, &bad),
            synthetic_suspects(&scratch, &bad),
            "epoch {}: incremental and from-scratch diagnosis diverge",
            update.epoch
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Materialized planner (Fattree(4)): any event sequence keeps the
    /// incremental plan equal to a from-scratch recompute, epoch by epoch.
    #[test]
    fn incremental_equals_scratch_materialized(
        raw in proptest::collection::vec((0u8..6, 0u16..64), 1..7)
    ) {
        let ft = Arc::new(Fattree::new(4).unwrap());
        check_equivalence(ft, &raw, 300_000);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Symmetric planner (Fattree(6), materialization forced off): the
    /// per-replica excluded re-solve agrees with from-scratch planning.
    #[test]
    fn incremental_equals_scratch_symmetric(
        raw in proptest::collection::vec((0u8..6, 0u16..64), 1..5)
    ) {
        let ft = Arc::new(Fattree::new(6).unwrap());
        check_equivalence(ft, &raw, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dispatch stability: for every single-link `TopologyEvent` delta,
    /// the pinglist versions and `PathId`s of untouched cells are
    /// bit-identical before and after `Detector::apply`, every
    /// re-dispatched list actually carries a touched cell's paths, and
    /// `PlanUpdate::lists_redispatched` accounts for exactly the lists
    /// that re-dispatched.
    #[test]
    fn single_cell_deltas_leave_untouched_cells_bit_identical(
        raw in proptest::collection::vec((0u8..2, 0u16..64), 1..6)
    ) {
        let ft = Arc::new(Fattree::new(4).unwrap());
        let mut run =
            Detector::new(ft.clone() as SharedTopology, SystemConfig::default()).unwrap();
        for &(kind, target) in &raw {
            let link = LinkId(u32::from(target) % ft.probe_links() as u32);
            let ev = if kind == 0 {
                TopologyEvent::LinkDown { link }
            } else {
                TopologyEvent::LinkUp { link }
            };

            let (ranges, touched) = {
                let plan = run.probe_plan().expect("plan built at boot");
                (plan.cell_ranges(), plan.cells_touching(&[link]))
            };
            let untouched: Vec<PathIdRange> = ranges
                .iter()
                .enumerate()
                .filter(|(i, _)| !touched.contains(i))
                .map(|(_, r)| *r)
                .collect();
            let before_paths: Vec<ProbePath> = run.matrix().paths.clone();
            let before_lists: Vec<Pinglist> = run.pinglists().to_vec();

            let update = run.apply(&ev).unwrap();

            // Untouched cells keep their exact id ranges…
            let after_ranges = run.probe_plan().unwrap().cell_ranges();
            for (i, r) in ranges.iter().enumerate() {
                if !touched.contains(&i) {
                    assert_eq!(after_ranges[i], *r, "untouched cell {i} range moved");
                }
            }
            // …and their paths, bit for bit (same id, links and nodes).
            let after = run.matrix().clone();
            for p in before_paths
                .iter()
                .filter(|p| untouched.iter().any(|r| r.contains(p.id)))
            {
                assert_eq!(
                    after.path(p.id),
                    Some(p),
                    "untouched path {} changed across {ev:?}",
                    p.id
                );
            }

            // Version stability + re-dispatch accounting: a list keeps
            // its version iff its assignment is unchanged, and the
            // PlanUpdate counts exactly the fresh versions.
            let mut redispatched = 0usize;
            for list in run.pinglists() {
                match before_lists.iter().find(|l| l.pinger == list.pinger) {
                    Some(old) if old.same_assignment(list) => {
                        assert_eq!(
                            old.version, list.version,
                            "unchanged list of {} re-versioned",
                            list.pinger
                        );
                    }
                    _ => redispatched += 1,
                }
            }
            assert_eq!(
                update.lists_redispatched, redispatched,
                "lists_redispatched miscounts ({ev:?})"
            );

            // Minimal re-dispatch: every re-dispatched list carries at
            // least one touched-cell path (before or after) — lists made
            // purely of untouched-cell paths and in-rack probes never
            // re-dispatch. Touched ranges include the post-apply ones so
            // the check stays sound across a re-base.
            let in_touched = |pid: PathId| {
                touched
                    .iter()
                    .any(|&i| ranges[i].contains(pid) || after_ranges[i].contains(pid))
            };
            for list in run.pinglists() {
                let old = before_lists.iter().find(|l| l.pinger == list.pinger);
                if let Some(old) = old {
                    if old.same_assignment(list) {
                        continue;
                    }
                    let references_touched = old
                        .entries
                        .iter()
                        .chain(&list.entries)
                        .filter_map(|e| e.path)
                        .any(in_touched);
                    assert!(
                        references_touched,
                        "list of {} re-dispatched without touching cell(s) {touched:?} ({ev:?})",
                        list.pinger
                    );
                }
            }
        }
    }
}

#[test]
fn fattree16_single_cell_delta_redispatches_only_the_touched_cell() {
    // The acceptance drill: on Fattree(16) (symmetric planner, 8 group
    // cells) a single-link delta re-solves exactly one cell and
    // re-dispatches exactly the pinglists carrying that cell's paths —
    // every list without them keeps its version, entries and `PathId`s
    // bit-for-bit. (1, 1) keeps the matrix lean enough that such lists
    // exist; the `replan_latency` bench reports the same counter.
    let ft = Arc::new(Fattree::new(16).unwrap());
    let dead = ft.ea_link(3, 2, 1);
    let cfg = SystemConfig::default().with_pmc(PmcConfig::identifiable(1));
    let mut run = Detector::new(ft.clone() as SharedTopology, cfg).unwrap();

    let (ranges, touched) = {
        let plan = run.probe_plan().expect("plan built at boot");
        (plan.cell_ranges(), plan.cells_touching(&[dead]))
    };
    assert_eq!(ranges.len(), 8, "k=16 symmetric plan has h = 8 cells");
    assert_eq!(touched.len(), 1, "an ea link lives in exactly one cell");
    let before_lists: Vec<Pinglist> = run.pinglists().to_vec();
    let before_paths: Vec<ProbePath> = run.matrix().paths.clone();

    let update = run.apply(&TopologyEvent::LinkDown { link: dead }).unwrap();
    assert_eq!(update.stats.cells_resolved, 1);
    assert_eq!(update.stats.cells_rebased, 0, "headroom absorbs the delta");

    // Untouched cells' paths are bit-identical.
    let after = run.matrix().clone();
    for (i, r) in ranges.iter().enumerate() {
        if i == touched[0] {
            continue;
        }
        for p in before_paths.iter().filter(|p| r.contains(p.id)) {
            assert_eq!(after.path(p.id), Some(p), "untouched path {} changed", p.id);
        }
    }

    // Exactly the touched cell's pinglists re-dispatch.
    let touched_range = ranges[touched[0]];
    let mut redispatched = 0usize;
    let mut stable = 0usize;
    for list in run.pinglists() {
        match before_lists.iter().find(|l| l.pinger == list.pinger) {
            Some(old) if old.same_assignment(list) => {
                assert_eq!(old.version, list.version);
                stable += 1;
            }
            other => {
                redispatched += 1;
                let references_touched = other
                    .iter()
                    .flat_map(|l| &l.entries)
                    .chain(&list.entries)
                    .filter_map(|e| e.path)
                    .any(|pid| touched_range.contains(pid));
                assert!(
                    references_touched,
                    "list of {} re-dispatched without touched-cell paths",
                    list.pinger
                );
            }
        }
    }
    assert_eq!(update.lists_redispatched, redispatched);
    assert!(
        stable > 0,
        "some pinglists must survive a single-cell delta untouched"
    );
}

#[test]
fn equivalence_holds_for_vl2_and_bcube_sequences() {
    // The non-decomposing families ride the same delta path: one cell,
    // re-solved when touched, restored when the exclusions empty out.
    let seq = [
        TopologyEvent::LinkDown { link: LinkId(0) },
        TopologyEvent::LinkDown { link: LinkId(5) },
        TopologyEvent::LinkUp { link: LinkId(0) },
        TopologyEvent::LinkUp { link: LinkId(5) },
    ];
    let topos: Vec<SharedTopology> = vec![
        Arc::new(Vl2::new(4, 4, 2).unwrap()),
        Arc::new(BCube::new(3, 1).unwrap()),
    ];
    for topo in topos {
        let name = topo.name();
        let mut ctl = Controller::new(topo, SystemConfig::default());
        ctl.build_deployment(&HashSet::new()).unwrap();
        let pristine = ctl.compute_matrix().unwrap();
        for ev in &seq {
            ctl.apply_event(ev).unwrap();
            let patched = ctl.compute_matrix().unwrap();
            let scratch = ctl.compute_matrix_from_scratch().unwrap();
            assert_matrices_equal(&patched, &scratch, &format!("{name} after {ev:?}"));
        }
        // The full up/down cycle lands back on the pristine plan.
        assert_matrices_equal(
            &ctl.compute_matrix().unwrap(),
            &pristine,
            &format!("{name} round trip"),
        );
    }
}

#[test]
fn rebound_pingers_never_report_lost_above_sent() {
    // Run a full churn cycle at the controller level: after every event
    // the fresh deployment's pinglists are re-bound and driven for a
    // window against a fabric mirroring the same failures (plus one
    // partial-loss link for actual losses); every counter must satisfy
    // lost <= sent.
    let ft = Arc::new(Fattree::new(4).unwrap());
    let mut ctl = Controller::new(ft.clone() as SharedTopology, SystemConfig::default());
    let cfg = SystemConfig::default();
    let mut rng = SmallRng::seed_from_u64(0xBEEF);

    let events = [
        TopologyEvent::LinkDown {
            link: ft.ea_link(0, 0, 0),
        },
        TopologyEvent::SwitchDrain {
            switch: ft.agg(1, 1),
        },
        TopologyEvent::LinkUp {
            link: ft.ea_link(0, 0, 0),
        },
        TopologyEvent::SwitchUndrain {
            switch: ft.agg(1, 1),
        },
    ];
    let mut fabric = Fabric::quiet(ft.as_ref());
    fabric.set_discipline_both(
        ft.ac_link(2, 0, 1),
        LossDiscipline::RandomPartial { rate: 0.3 },
    );

    for (w, ev) in events.iter().enumerate() {
        ChurnSchedule::apply_to_fabric(&mut fabric, ev);
        ctl.apply_event(ev).unwrap();
        let dep = ctl.build_deployment(&HashSet::new()).unwrap();
        assert!(!dep.pinglists.is_empty());
        for list in &dep.pinglists {
            let pinger = Pinger::bind(list.clone(), ft.graph());
            let report = pinger.run_window(&fabric, &cfg, w as u64, &mut rng);
            for (pid, c) in &report.paths {
                assert!(
                    c.lost <= c.sent,
                    "path {pid}: lost {} > sent {}",
                    c.lost,
                    c.sent
                );
            }
            for (peer, c) in &report.in_rack {
                assert!(
                    c.lost <= c.sent,
                    "in-rack {peer}: lost {} > sent {}",
                    c.lost,
                    c.sent
                );
            }
            for ((pid, flow), (sent, lost)) in &report.flows {
                assert!(lost <= sent, "flow {pid}/{flow}: lost {lost} > sent {sent}");
            }
        }
    }
}

#[test]
fn detector_apply_replans_and_emits_plan_updated() {
    let ft = Arc::new(Fattree::new(4).unwrap());
    let victim = ft.ea_link(1, 0, 1);
    let collector = CollectingSink::new();
    let mut run = Detector::builder(ft.clone() as SharedTopology)
        .sink(Box::new(collector.clone()))
        .build()
        .unwrap();
    let mut fabric = Fabric::quiet(ft.as_ref());
    let mut rng = SmallRng::seed_from_u64(0xABCD);
    let pristine_paths = run.matrix().num_paths();

    // Window 0: clean.
    assert!(run.step(&fabric, &mut rng).diagnosis.is_clean());

    // Drain: fabric drops, detector re-plans. No probe crosses the dead
    // link, so the drain raises no alarm.
    let down = TopologyEvent::LinkDown { link: victim };
    ChurnSchedule::apply_to_fabric(&mut fabric, &down);
    let update = run.apply(&down).unwrap();
    assert_eq!(update.epoch, 1);
    assert_eq!(update.links_changed, 1);
    assert_eq!(update.stats.cells_resolved, 1);
    assert!(run.matrix().uncoverable.contains(&victim));
    let w = run.step(&fabric, &mut rng);
    assert!(w.diagnosis.is_clean(), "{:?}", w.diagnosis.suspect_links());

    // Recover: pristine plan restored without solving.
    let up = TopologyEvent::LinkUp { link: victim };
    ChurnSchedule::apply_to_fabric(&mut fabric, &up);
    let update = run.apply(&up).unwrap();
    assert_eq!(update.epoch, 2);
    assert_eq!(update.stats.cells_restored, 1);
    assert_eq!(update.stats.cells_resolved, 0);
    assert_eq!(run.matrix().num_paths(), pristine_paths);
    assert!(run.step(&fabric, &mut rng).diagnosis.is_clean());

    // The stream carries both PlanUpdated records, with consistent
    // payloads and JSON round-trips.
    let plan_events: Vec<RuntimeEvent> = collector
        .events()
        .into_iter()
        .filter(|e| matches!(e, RuntimeEvent::PlanUpdated { .. }))
        .collect();
    assert_eq!(plan_events.len(), 2);
    let mut deltas = Vec::new();
    for (i, e) in plan_events.iter().enumerate() {
        let RuntimeEvent::PlanUpdated {
            epoch,
            links_changed,
            probes_delta,
            ..
        } = e
        else {
            unreachable!()
        };
        assert_eq!(*epoch, (i + 1) as u64);
        assert_eq!(*links_changed, 1);
        deltas.push(*probes_delta);
        let parsed = RuntimeEvent::from_json(&Json::parse(&e.to_json().to_string()).unwrap());
        assert_eq!(parsed.as_ref(), Some(e));
    }
    // The drain removed some paths; the recovery added them back.
    assert!(deltas[0] <= 0);
    assert_eq!(deltas[0] + deltas[1], 0);
}

#[test]
fn accuracy_during_a_drain_window() {
    // The ROADMAP churn-accuracy scenario: while a drained link is down,
    // (a) the drain itself must never be blamed (no false positive on a
    // link nothing probes), and (b) a *real* failure elsewhere must
    // still be localized mid-drain — the re-planned matrix keeps the
    // rest of the fabric β-identifiable.
    let ft = Arc::new(Fattree::new(4).unwrap());
    let drained = ft.ea_link(0, 0, 0);
    let faulty = ft.ac_link(2, 1, 0);
    let mut run = Detector::new(ft.clone() as SharedTopology, SystemConfig::default()).unwrap();
    let mut fabric = Fabric::quiet(ft.as_ref());
    let mut rng = SmallRng::seed_from_u64(0xD12A);

    // Window 0: clean baseline.
    assert!(run.step(&fabric, &mut rng).diagnosis.is_clean());

    // Drain one link (fabric + plan in lockstep), then break another
    // for real. The drain window must localize the real failure only.
    let down = TopologyEvent::LinkDown { link: drained };
    ChurnSchedule::apply_to_fabric(&mut fabric, &down);
    run.apply(&down).unwrap();
    fabric.set_discipline_both(faulty, LossDiscipline::RandomPartial { rate: 0.5 });

    for w in 1..=3 {
        let result = run.step(&fabric, &mut rng);
        let suspects = result.diagnosis.suspect_links();
        assert!(
            suspects.contains(&faulty),
            "window {w}: real failure missed mid-drain, suspects {suspects:?}"
        );
        assert!(
            !suspects.contains(&drained),
            "window {w}: drained link blamed, suspects {suspects:?}"
        );
    }

    // Recovery: the repaired link is probed again and stays clean; the
    // real failure is still on the books.
    let up = TopologyEvent::LinkUp { link: drained };
    ChurnSchedule::apply_to_fabric(&mut fabric, &up);
    run.apply(&up).unwrap();
    let result = run.step(&fabric, &mut rng);
    let suspects = result.diagnosis.suspect_links();
    assert!(suspects.contains(&faulty), "suspects {suspects:?}");
    assert!(!suspects.contains(&drained), "suspects {suspects:?}");
}

#[test]
fn drain_window_accuracy_survives_the_pipeline() {
    // The same mid-drain accuracy contract through run_pipelined: churn
    // scripted into the run, a real partial failure on the fabric.
    let ft = Arc::new(Fattree::new(4).unwrap());
    let drained = ft.ea_link(0, 0, 0);
    let faulty = ft.ac_link(2, 1, 0);
    let mut fabric = Fabric::quiet(ft.as_ref());
    // The drained link drops traffic for the whole run (as a drained
    // cable would); the plan routes around it from window 1 on.
    fabric.set_discipline_both(drained, LossDiscipline::Full);
    fabric.set_discipline_both(faulty, LossDiscipline::RandomPartial { rate: 0.5 });

    let script = Script::new().topology(1, TopologyEvent::LinkDown { link: drained });
    let mut run = Detector::new(ft.clone() as SharedTopology, SystemConfig::default()).unwrap();
    let mut rng = SmallRng::seed_from_u64(0xD12B);
    let results = run
        .run_pipelined(
            &fabric,
            4,
            &script,
            &detector::system::PipelineConfig::default(),
            &mut rng,
        )
        .unwrap();

    // Windows 1.. run with the drain in force: the real failure
    // surfaces, the drained link never does.
    for w in &results[1..] {
        let suspects = w.diagnosis.suspect_links();
        assert!(
            suspects.contains(&faulty),
            "window {}: real failure missed mid-drain, suspects {suspects:?}",
            w.window
        );
        assert!(
            !suspects.contains(&drained),
            "window {}: drained link blamed, suspects {suspects:?}",
            w.window
        );
    }
}

#[test]
fn redundant_events_keep_pinglist_versions_stable() {
    // A delta that changes nothing must not re-dispatch pinglists — the
    // re-binding seam: versions stay, cached pinger bindings stay valid.
    let ft = Arc::new(Fattree::new(4).unwrap());
    let victim = ft.ea_link(0, 1, 1);
    let mut run = Detector::new(ft.clone() as SharedTopology, SystemConfig::default()).unwrap();
    run.apply(&TopologyEvent::LinkDown { link: victim })
        .unwrap();
    let versions: Vec<u64> = run.pinglists().iter().map(|l| l.version).collect();

    // Downing the same link again: epoch bumps, nothing changes.
    let update = run
        .apply(&TopologyEvent::LinkDown { link: victim })
        .unwrap();
    assert_eq!(update.epoch, 2);
    assert_eq!(update.links_changed, 0);
    assert_eq!(update.probes_delta, 0);
    let after: Vec<u64> = run.pinglists().iter().map(|l| l.version).collect();
    assert_eq!(versions, after);
}

#[test]
fn pod_drain_and_expansion_reroute_the_plan() {
    // Drain a whole pod (maintenance / not-yet-installed expansion pod),
    // then add it: the plan must drop every path touching the pod and
    // rebuild to exactly the pristine matrix on expansion.
    let ft = Arc::new(Fattree::new(4).unwrap());
    let mut run = Detector::new(ft.clone() as SharedTopology, SystemConfig::default()).unwrap();
    let pristine_paths = run.matrix().num_paths();
    let pod_tors: Vec<NodeId> = (0..ft.half()).map(|e| ft.edge(3, e)).collect();

    let update = run.apply(&TopologyEvent::PodDrained { pod: 3 }).unwrap();
    assert!(update.links_changed > 0);
    for p in &run.matrix().paths {
        for tor in &pod_tors {
            assert!(!p.nodes().contains(tor), "path visits drained pod");
        }
    }
    assert!(run.matrix().num_paths() < pristine_paths);

    let update = run.apply(&TopologyEvent::PodAdded { pod: 3 }).unwrap();
    assert!(update.probes_delta > 0);
    assert_eq!(run.matrix().num_paths(), pristine_paths);
}
