//! The ROADMAP's Table 4 evaluation: score-first (paper-faithful) vs
//! consistency-first PLL greedy on noiseless failure episodes.
//!
//! The PLL greedy ranks candidate links by explained losses with the hit
//! ratio as an eligibility filter (§5.3). The ROADMAP hypothesizes that
//! preferring *fully consistent* links (hit ratio 1) first would cut
//! residual false positives in the noiseless case. This sweep runs both
//! variants over noiseless Fattree and VL2 failure episodes at Table 4's
//! probe budget (30 probes per path), prints the comparison, and asserts
//! the paper-faithful variant's accuracy floor so the default
//! configuration can never silently regress.
//!
//! The sweep honours `DETECTOR_BENCH_SCALE`: the default `quick` runs
//! Fattree(8) + VL2(8,6); `paper` runs the paper's Table 4 sizes —
//! Fattree(18) and VL2(20,12) — which is the regime the ROADMAP's
//! "re-evaluate consistency-first at paper sizes" item asks for.
//!
//! The sweep is `#[ignore]`d (minutes of episodes); the CI smoke job
//! runs it in release mode next to the scheduler soak, at both scales:
//!
//! ```text
//! cargo test --release --test accuracy_table4 -- --ignored
//! DETECTOR_BENCH_SCALE=paper cargo test --release --test accuracy_table4 -- --ignored
//! ```

use detector::prelude::*;
use detector_bench::{bench_pll, episode_metrics, pct, Scale, Table};

/// Micro-averaged noiseless campaign: `episodes` random scenarios with
/// `n_failures` simultaneous link failures each, probed on a quiet
/// fabric (no background loss — the regime the consistency-first
/// hypothesis is about).
#[allow(clippy::too_many_arguments)]
fn noiseless_campaign(
    topo: &(dyn DcnTopology + Sync),
    matrix: &ProbeMatrix,
    gen: &FailureGenerator,
    n_failures: usize,
    episodes: usize,
    localizer: &dyn Localizer,
    seed: u64,
) -> LocalizationMetrics {
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut acc = LocalizationMetrics::zero();
    for _ in 0..episodes {
        let scenario = gen.sample(topo, n_failures, &mut rng);
        let m = episode_metrics(topo, matrix, &scenario, 30, localizer, None, &mut rng);
        acc.accumulate(&m);
    }
    acc
}

#[test]
#[ignore = "accuracy sweep (minutes); run by the CI smoke job in release mode"]
fn table4_noiseless_score_first_vs_consistency_first() {
    let score_first = PllLocalizer::new(bench_pll());
    let consistency_first = PllLocalizer::new(bench_pll().consistency_first());
    let gen = FailureGenerator::links_only().with_min_rate(0.1);
    // Accuracy floors per simultaneous-failure count: a (1, 1) matrix
    // certifies single-failure identification (Table 4's (1,1) row is
    // > 90 %); beyond β the guarantee degrades gracefully, so the floor
    // steps down the way the paper's multi-failure columns do.
    let failures: [(usize, f64); 3] = [(1, 0.95), (3, 0.85), (5, 0.75)];
    // Paper scale runs Table 4's sizes with fewer episodes per cell —
    // the per-episode probe volume is ~20× quick's, and the verdict
    // question (does consistency-first hold accuracy while cutting
    // false positives?) is about the regime, not the sample count.
    let scale = Scale::from_env();
    let (ft_radix, vl_params, episodes) = match scale {
        Scale::Quick => (8u32, (8u32, 6u32, 2u32), 12usize),
        Scale::Paper => (18, (20, 12, 2), 6),
    };

    let topos: Vec<(String, Box<dyn DcnTopology + Sync>, ProbeMatrix)> = {
        let ft = Fattree::new(ft_radix).unwrap();
        let ft_matrix = construct_symmetric(&ft, &PmcConfig::identifiable(1)).unwrap();
        let (da, di, srv) = vl_params;
        let vl = Vl2::new(da, di, srv).unwrap();
        let vl_matrix = construct(
            vl.probe_links(),
            vl.enumerate_candidates(),
            &PmcConfig::identifiable(1),
        )
        .unwrap();
        vec![
            (format!("Fattree({ft_radix})"), Box::new(ft), ft_matrix),
            (format!("VL2({da},{di})"), Box::new(vl), vl_matrix),
        ]
    };

    let mut table = Table::new(vec![
        "topology",
        "fails",
        "score acc",
        "score FP",
        "cons acc",
        "cons FP",
    ]);
    for (name, topo, matrix) in &topos {
        for (fi, &(n, floor)) in failures.iter().enumerate() {
            let seed = 0x7AB4 + fi as u64;
            let s =
                noiseless_campaign(topo.as_ref(), matrix, &gen, n, episodes, &score_first, seed);
            let c = noiseless_campaign(
                topo.as_ref(),
                matrix,
                &gen,
                n,
                episodes,
                &consistency_first,
                seed,
            );
            table.row(vec![
                name.clone(),
                n.to_string(),
                pct(s.accuracy),
                s.false_positives.to_string(),
                pct(c.accuracy),
                c.false_positives.to_string(),
            ]);

            assert!(
                s.accuracy >= floor,
                "{name} @ {n} failures: paper-faithful accuracy {} below floor {floor}",
                s.accuracy
            );
            // The variant under evaluation must never blame *more*
            // wrong links than the paper-faithful greedy in the
            // noiseless regime — that is its entire selling point.
            assert!(
                c.false_positives <= s.false_positives,
                "{name} @ {n} failures: consistency-first raised false positives \
                 ({} > {})",
                c.false_positives,
                s.false_positives
            );
        }
    }
    println!(
        "\nTable 4 sweep ({scale:?} scale, noiseless, 30 probes/path, \
         {episodes} episodes/cell):"
    );
    table.print();
    println!("\nROADMAP verdict input: adopt consistency-first only if it holds");
    println!("accuracy while cutting false positives at both scales (the paper");
    println!("regime is DETECTOR_BENCH_SCALE=paper: Fattree(18) + VL2(20,12)).");
}
